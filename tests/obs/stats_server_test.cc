#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window_stats.h"
#include "json_check.h"

namespace commsig::obs {
namespace {

using commsig::obs_test::IsValidJson;

/// Sends one raw HTTP request to 127.0.0.1:`port` and returns the full
/// response (headers + body), or "" on any socket failure.
std::string HttpRoundTrip(uint16_t port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

class StatsServerTest : public ::testing::Test {
 protected:
  StatsServerTest() {
    PreRegisterCoreMetrics();  // stable keys, as the CLI guarantees
    WindowStatsAggregator::Global().Reset();
    LogSink::Global().SetStderrEnabled(false);
  }
  ~StatsServerTest() override {
    WindowStatsAggregator::Global().Reset();
    LogSink::Global().SetStderrEnabled(true);
  }

  StatsServer::Options options_;  // defaults: ephemeral loopback port
};

TEST_F(StatsServerTest, RoutesMetricsAsPrometheusText) {
  int status = 0;
  std::string type;
  std::string body =
      StatsServer::HandleRequest("/metrics", options_, status, type);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(type, "text/plain; version=0.0.4");
  EXPECT_NE(body.find("# TYPE commsig_"), std::string::npos);
  EXPECT_NE(body.find("commsig_pipeline_windows_recorded"),
            std::string::npos);
}

TEST_F(StatsServerTest, VarzIsOneValidJsonSnapshot) {
  int status = 0;
  std::string type;
  std::string body =
      StatsServer::HandleRequest("/varz", options_, status, type);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(type, "application/json");
  EXPECT_TRUE(IsValidJson(body)) << body;
  EXPECT_NE(body.find("\"uptime_us\""), std::string::npos);
  EXPECT_NE(body.find("\"metrics\""), std::string::npos);
}

TEST_F(StatsServerTest, HealthzReportsStartingThenOkThenStalled) {
  int status = 0;
  std::string type;
  options_.stall_threshold_us = 1;  // stall "immediately" after a window

  // No window recorded yet: starting, and the stall check must not fire.
  std::string body =
      StatsServer::HandleRequest("/healthz", options_, status, type);
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(IsValidJson(body)) << body;
  EXPECT_NE(body.find("\"starting\""), std::string::npos);

  WindowStatsAggregator::Global().Record(WindowRecord{});
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  body = StatsServer::HandleRequest("/healthz", options_, status, type);
  EXPECT_EQ(status, 503);
  EXPECT_TRUE(IsValidJson(body)) << body;
  EXPECT_NE(body.find("\"stalled\""), std::string::npos);

  // A generous threshold flips it back to ok.
  options_.stall_threshold_us = 60'000'000;
  body = StatsServer::HandleRequest("/healthz", options_, status, type);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"ok\""), std::string::npos);
}

TEST_F(StatsServerTest, TracezServesTheRecentSpanRing) {
  TraceCollector& collector = TraceCollector::Global();
  collector.SetRetainRecent(true);
  { ScopedSpan span("stats_server_test/span"); }
  int status = 0;
  std::string type;
  std::string body =
      StatsServer::HandleRequest("/tracez", options_, status, type);
  collector.SetRetainRecent(false);
  collector.Clear();
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(IsValidJson(body)) << body;
  EXPECT_NE(body.find("stats_server_test/span"), std::string::npos) << body;
}

TEST_F(StatsServerTest, PipelinezServesTheAttributionTable) {
  WindowRecord r;
  r.window_index = 3;
  r.events = 42;
  r.stage_us[static_cast<size_t>(PipelineStage::kDirtyRecompute)] = 5;
  WindowStatsAggregator::Global().Record(r);
  int status = 0;
  std::string type;
  std::string body =
      StatsServer::HandleRequest("/pipelinez", options_, status, type);
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(IsValidJson(body)) << body;
  EXPECT_NE(body.find("\"window\": 3"), std::string::npos);
  EXPECT_NE(body.find("\"dirty_recompute\": 5"), std::string::npos);
}

TEST_F(StatsServerTest, UnknownPathIs404ListingTheEndpoints) {
  int status = 0;
  std::string type;
  std::string body =
      StatsServer::HandleRequest("/nope", options_, status, type);
  EXPECT_EQ(status, 404);
  EXPECT_TRUE(IsValidJson(body)) << body;
  EXPECT_NE(body.find("/pipelinez"), std::string::npos);
}

TEST_F(StatsServerTest, QueryStringIsIgnoredForRouting) {
  int status = 0;
  std::string type;
  StatsServer::HandleRequest("/healthz?verbose=1", options_, status, type);
  EXPECT_EQ(status, 200);
}

TEST_F(StatsServerTest, ServesHttpOverARealSocket) {
  StatsServer server({});  // ephemeral port
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  std::string response = HttpRoundTrip(
      server.port(), "GET /healthz HTTP/1.0\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_TRUE(IsValidJson(BodyOf(response))) << response;

  // HEAD returns the same headers and no body.
  response = HttpRoundTrip(server.port(), "HEAD /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_TRUE(BodyOf(response).empty()) << response;

  // Anything but GET/HEAD is rejected.
  response = HttpRoundTrip(server.port(), "POST /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 405"), std::string::npos) << response;

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST_F(StatsServerTest, StartTwiceFailsAndStopWithoutStartIsSafe) {
  StatsServer server({});
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());
  server.Stop();

  StatsServer never_started({});
  never_started.Stop();  // must not hang or crash
}

TEST_F(StatsServerTest, RejectsUnparseableBindAddress) {
  StatsServer::Options options;
  options.bind_address = "not-an-ip";
  StatsServer server(options);
  EXPECT_FALSE(server.Start().ok());
}

}  // namespace
}  // namespace commsig::obs
