#include "obs/window_stats.h"

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/log.h"
#include "obs/metrics.h"
#include "json_check.h"

namespace commsig::obs {
namespace {

using commsig::obs_test::IsValidJson;

WindowRecord MakeRecord(uint64_t index, uint64_t total_us = 0) {
  WindowRecord r;
  r.window_index = index;
  r.events = 10 * (index + 1);
  r.focal_nodes = 5;
  r.dirty_nodes = 2;
  r.reused_nodes = 3;
  r.stage_us[static_cast<size_t>(PipelineStage::kDeltaDiff)] = 7;
  r.stage_us[static_cast<size_t>(PipelineStage::kDirtyRecompute)] = 11;
  r.total_us = total_us;
  return r;
}

/// The aggregator is a process-wide singleton; start every test from a
/// clean slate (and silence the slow-window warnings it may emit).
class WindowStatsTest : public ::testing::Test {
 protected:
  WindowStatsTest() {
    WindowStatsAggregator::Global().Reset();
    LogSink::Global().SetStderrEnabled(false);
  }
  ~WindowStatsTest() override {
    WindowStatsAggregator::Global().Reset();
    LogSink::Global().SetStderrEnabled(true);
  }
};

TEST(PipelineStageTest, NamesAreStableSnakeCase) {
  EXPECT_EQ(PipelineStageName(PipelineStage::kParse), "parse");
  EXPECT_EQ(PipelineStageName(PipelineStage::kWindowBuild), "window_build");
  EXPECT_EQ(PipelineStageName(PipelineStage::kDeltaDiff), "delta_diff");
  EXPECT_EQ(PipelineStageName(PipelineStage::kDirtyRecompute),
            "dirty_recompute");
  EXPECT_EQ(PipelineStageName(PipelineStage::kExtract), "extract");
}

TEST_F(WindowStatsTest, RecordFillsDerivedFields) {
  WindowStatsAggregator& agg = WindowStatsAggregator::Global();
  agg.Record(MakeRecord(0));
  std::vector<WindowRecord> recent = agg.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].total_us, 18u);  // 7 + 11
  EXPECT_GT(recent[0].completed_at_us, 0u);
  EXPECT_EQ(agg.windows_recorded(), 1u);
}

TEST_F(WindowStatsTest, ExplicitTotalIsPreserved) {
  WindowStatsAggregator& agg = WindowStatsAggregator::Global();
  agg.Record(MakeRecord(0, /*total_us=*/1234));
  ASSERT_EQ(agg.Recent().size(), 1u);
  EXPECT_EQ(agg.Recent()[0].total_us, 1234u);
}

TEST_F(WindowStatsTest, RingKeepsTheNewestWindowsOldestFirst) {
  WindowStatsAggregator& agg = WindowStatsAggregator::Global();
  const size_t total = WindowStatsAggregator::kRingCapacity + 72;
  for (size_t i = 0; i < total; ++i) agg.Record(MakeRecord(i));
  EXPECT_EQ(agg.windows_recorded(), total);

  std::vector<WindowRecord> recent = agg.Recent();
  ASSERT_EQ(recent.size(), WindowStatsAggregator::kRingCapacity);
  EXPECT_EQ(recent.front().window_index,
            total - WindowStatsAggregator::kRingCapacity);
  EXPECT_EQ(recent.back().window_index, total - 1);
  for (size_t i = 1; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].window_index, recent[i - 1].window_index + 1);
  }

  std::vector<WindowRecord> last32 = agg.Recent(32);
  ASSERT_EQ(last32.size(), 32u);
  EXPECT_EQ(last32.front().window_index, total - 32);
  EXPECT_EQ(last32.back().window_index, total - 1);
}

TEST_F(WindowStatsTest, SetupStagesAccumulateSeparately) {
  WindowStatsAggregator& agg = WindowStatsAggregator::Global();
  agg.RecordSetupStage(PipelineStage::kParse, 100);
  agg.RecordSetupStage(PipelineStage::kParse, 50);
  agg.RecordSetupStage(PipelineStage::kWindowBuild, 30);
  EXPECT_EQ(agg.windows_recorded(), 0u);  // setup is not a window advance
  std::string json = agg.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"parse_us\": 150"), std::string::npos) << json;
  EXPECT_NE(json.find("\"window_build_us\": 30"), std::string::npos) << json;
}

TEST_F(WindowStatsTest, StageHistogramsUseLiteralRegistryNames) {
  // Regression: stage histograms were once addressed by a concatenated
  // name ("pipeline/" + stage + "_us"), which kept them out of the
  // extracted obs schema (docs/obs_schema.json). Record() and
  // RecordSetupStage() must feed the verbatim per-stage names.
  WindowStatsAggregator& agg = WindowStatsAggregator::Global();
  MetricsRegistry& reg = MetricsRegistry::Global();
  const uint64_t delta_before =
      reg.GetHistogram("pipeline/delta_diff_us").Snapshot().count;
  const uint64_t parse_before =
      reg.GetHistogram("pipeline/parse_us").Snapshot().count;
  agg.Record(MakeRecord(0));  // stages: delta_diff + dirty_recompute
  agg.RecordSetupStage(PipelineStage::kParse, 42);
  EXPECT_EQ(reg.GetHistogram("pipeline/delta_diff_us").Snapshot().count,
            delta_before + 1);
  EXPECT_EQ(reg.GetHistogram("pipeline/parse_us").Snapshot().count,
            parse_before + 1);
}

TEST_F(WindowStatsTest, WatchdogCountsWindowsOverBudget) {
  WindowStatsAggregator& agg = WindowStatsAggregator::Global();
  Counter& slow = MetricsRegistry::Global().GetCounter("pipeline/slow_windows");
  const uint64_t before = slow.Value();

  agg.SetLatencyBudgetUs(100);
  agg.Record(MakeRecord(0, /*total_us=*/99));
  EXPECT_EQ(slow.Value(), before);
  agg.Record(MakeRecord(1, /*total_us=*/101));
  EXPECT_EQ(slow.Value(), before + 1);

  agg.SetLatencyBudgetUs(0);  // 0 disables the watchdog entirely
  agg.Record(MakeRecord(2, /*total_us=*/999999));
  EXPECT_EQ(slow.Value(), before + 1);
}

TEST_F(WindowStatsTest, LastAdvanceAgeIsMaxBeforeFirstWindow) {
  WindowStatsAggregator& agg = WindowStatsAggregator::Global();
  EXPECT_EQ(agg.LastAdvanceAgeUs(), std::numeric_limits<uint64_t>::max());
  agg.Record(MakeRecord(0));
  EXPECT_LT(agg.LastAdvanceAgeUs(), 60'000'000u);  // recorded "just now"
}

TEST_F(WindowStatsTest, ToJsonIsValidAndCarriesTheAttributionTable) {
  WindowStatsAggregator& agg = WindowStatsAggregator::Global();
  agg.SetLatencyBudgetUs(5000);
  for (size_t i = 0; i < 3; ++i) agg.Record(MakeRecord(i));
  std::string json = agg.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"windows_recorded\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"latency_budget_us\": 5000"), std::string::npos);
  EXPECT_NE(json.find("\"delta_diff\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"dirty_recompute\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"dirty_nodes\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"stage_names\""), std::string::npos);
}

TEST_F(WindowStatsTest, ToJsonEmptyRingIsStillValid) {
  std::string json = WindowStatsAggregator::Global().ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"windows_recorded\": 0"), std::string::npos);
}

TEST_F(WindowStatsTest, ScopedStageTimerAddsScopeWallTime) {
  WindowRecord record;
  {
    ScopedStageTimer timer(record, PipelineStage::kExtract);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    ScopedStageTimer timer(record, PipelineStage::kExtract);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(record.stage_us[static_cast<size_t>(PipelineStage::kExtract)],
            2000u);  // two 2ms sleeps, generous slack for coarse clocks
  EXPECT_EQ(record.stage_us[static_cast<size_t>(PipelineStage::kParse)], 0u);
}

TEST_F(WindowStatsTest, RecordFeedsRegistryMetrics) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const uint64_t windows_before =
      reg.GetCounter("pipeline/windows_recorded").Value();
  const uint64_t events_before =
      reg.GetCounter("pipeline/events_processed").Value();
  WindowStatsAggregator::Global().Record(MakeRecord(7));
  EXPECT_EQ(reg.GetCounter("pipeline/windows_recorded").Value(),
            windows_before + 1);
  EXPECT_EQ(reg.GetCounter("pipeline/events_processed").Value(),
            events_before + 80);  // MakeRecord(7).events
  EXPECT_DOUBLE_EQ(reg.GetGauge("pipeline/last_window_total_us").Value(),
                   18.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("pipeline/last_window_dirty_nodes").Value(),
                   2.0);
}

}  // namespace
}  // namespace commsig::obs
