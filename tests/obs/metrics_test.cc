#include "obs/metrics.h"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/rwr.h"
#include "graph/graph_builder.h"
#include "obs/obs.h"
#include "json_check.h"

namespace commsig::obs {
namespace {

using commsig::obs_test::IsValidJson;

TEST(CounterTest, SingleThreadedAdds) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsFromManyThreadsAreExact) {
  Counter& c = MetricsRegistry::Global().GetCounter("test/concurrent");
  c.Reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(3.25);
  EXPECT_DOUBLE_EQ(g.Value(), 3.25);
  g.Set(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), -1.0);
}

TEST(HistogramTest, LogScaleBucketing) {
  Histogram h;
  h.Observe(1.0);   // [1, 2)
  h.Observe(1.5);   // [1, 2)
  h.Observe(3.0);   // [2, 4)
  h.Observe(100.0); // [64, 128)
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_NEAR(snap.mean, (1.0 + 1.5 + 3.0 + 100.0) / 4.0, 1e-12);
  ASSERT_EQ(snap.buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(snap.buckets[0].upper_bound, 2.0);
  EXPECT_EQ(snap.buckets[0].count, 2u);
  EXPECT_DOUBLE_EQ(snap.buckets[1].upper_bound, 4.0);
  EXPECT_EQ(snap.buckets[1].count, 1u);
  EXPECT_DOUBLE_EQ(snap.buckets[2].upper_bound, 128.0);
  EXPECT_EQ(snap.buckets[2].count, 1u);
}

TEST(HistogramTest, NonPositiveAndExtremeValuesLandInEdgeBuckets) {
  Histogram h;
  h.Observe(0.0);
  h.Observe(-5.0);
  h.Observe(1e300);  // far above the top bucket
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  ASSERT_EQ(snap.buckets.size(), 2u);
  EXPECT_EQ(snap.buckets.front().count, 2u);  // underflow bucket
  EXPECT_EQ(snap.buckets.back().count, 1u);   // overflow bucket
}

TEST(HistogramTest, ConcurrentObservesKeepExactCount) {
  Histogram& h = MetricsRegistry::Global().GetHistogram("test/hist");
  h.Reset();
  constexpr int kThreads = 4;
  constexpr int kObservations = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObservations; ++i) {
        h.Observe(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Snapshot().count,
            static_cast<uint64_t>(kThreads) * kObservations);
}

TEST(HistogramTest, QuantileOfEmptySnapshotIsZero) {
  Histogram h;
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 0.0);
}

TEST(HistogramTest, QuantilesOfAConstantClampToTheObservedValue) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Observe(4.0);
  HistogramSnapshot snap = h.Snapshot();
  // All mass in one bucket; the clamp to [min, max] pins every quantile
  // to the exact observed value rather than the bucket midpoint.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.50), 4.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.95), 4.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 4.0);
}

TEST(HistogramTest, QuantilesAreMonotoneAndBucketAccurate) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i));
  HistogramSnapshot snap = h.Snapshot();
  const double p50 = snap.Quantile(0.50);
  const double p95 = snap.Quantile(0.95);
  const double p99 = snap.Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Log-scale buckets bound the relative error by the 2x bucket width:
  // the true p50 is 500 (bucket [256, 512)), the true p99 is 990.
  EXPECT_GE(p50, 256.0);
  EXPECT_LT(p50, 1024.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1000.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 1.0);    // clamps to min
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 1000.0);  // clamps to max
}

TEST(MetricsRegistryTest, JsonSnapshotCarriesQuantileFields) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Histogram& h = reg.GetHistogram("test/quantile_json_hist");
  h.Reset();
  for (int i = 0; i < 100; ++i) h.Observe(8.0);
  std::string json = reg.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"p50\": 8"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\": 8"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\": 8"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, PrometheusExportDerivesQuantileGauges) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Histogram& h = reg.GetHistogram("test/quantile_prom_hist");
  h.Reset();
  for (int i = 0; i < 100; ++i) h.Observe(16.0);
  std::string text = reg.ToPrometheus();
  EXPECT_NE(text.find("# TYPE commsig_test_quantile_prom_hist_p50 gauge"),
            std::string::npos);
  EXPECT_NE(text.find("commsig_test_quantile_prom_hist_p50 16"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE commsig_test_quantile_prom_hist_p95 gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE commsig_test_quantile_prom_hist_p99 gauge"),
            std::string::npos);
}

TEST(MetricsRegistryTest, SameNameReturnsSameMetric) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& a = reg.GetCounter("test/same");
  Counter& b = reg.GetCounter("test/same");
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsReferencesValid) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("test/reset");
  c.Add(7);
  reg.Reset();
  EXPECT_EQ(c.Value(), 0u);
  c.Add(2);  // reference still usable after Reset
  EXPECT_EQ(c.Value(), 2u);
}

TEST(MetricsRegistryTest, JsonSnapshotIsValidAndComplete) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test/json_counter").Add(3);
  reg.GetGauge("test/json_gauge").Set(1.5);
  reg.GetHistogram("test/json_hist").Observe(10.0);
  std::string json = reg.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"test/json_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("test/json_gauge"), std::string::npos);
  EXPECT_NE(json.find("test/json_hist"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusExportSanitizesNames) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test/prom-metric").Add(1);
  std::string text = reg.ToPrometheus();
  EXPECT_NE(text.find("commsig_test_prom_metric"), std::string::npos);
  EXPECT_NE(text.find("# TYPE commsig_test_prom_metric counter"),
            std::string::npos);
}

TEST(MetricsRegistryTest, PreRegisterCoreMetricsGuaranteesStableKeys) {
  PreRegisterCoreMetrics();
  std::string json = MetricsRegistry::Global().ToJson();
  EXPECT_NE(json.find("rwr/iterations"), std::string::npos);
  EXPECT_NE(json.find("threadpool/tasks_executed"), std::string::npos);
  EXPECT_NE(json.find("distance/evaluations"), std::string::npos);
  EXPECT_NE(json.find("timeline/nodes_dirty"), std::string::npos);
  EXPECT_NE(json.find("timeline/nodes_reused"), std::string::npos);
  EXPECT_NE(json.find("timeline/rwr_warm_start_fallbacks"),
            std::string::npos);
  EXPECT_NE(json.find("sketch/signature_cache_hits"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusExportCarriesTimelineCounters) {
  // Scrape-side contract: the incremental-engine health counters must be
  // present (and typed) from process start, before any timeline runs.
  PreRegisterCoreMetrics();
  std::string text = MetricsRegistry::Global().ToPrometheus();
  for (const char* name :
       {"commsig_timeline_nodes_dirty", "commsig_timeline_nodes_reused",
        "commsig_timeline_rwr_warm_start_fallbacks",
        "commsig_sketch_signature_cache_hits"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
    EXPECT_NE(text.find(std::string("# TYPE ") + name + " counter"),
              std::string::npos)
        << name;
  }
}

#ifndef COMMSIG_OBS_DISABLED
TEST(InstrumentationTest, MacrosFeedTheGlobalRegistry) {
  Counter& c = MetricsRegistry::Global().GetCounter("test/macro_counter");
  c.Reset();
  COMMSIG_COUNTER_ADD("test/macro_counter", 5);
  COMMSIG_COUNTER_ADD("test/macro_counter", 2);
  EXPECT_EQ(c.Value(), 7u);

  COMMSIG_GAUGE_SET("test/macro_gauge", 0.5);
  EXPECT_DOUBLE_EQ(MetricsRegistry::Global().GetGauge("test/macro_gauge")
                       .Value(), 0.5);
}

TEST(InstrumentationTest, RwrComputeRecordsIterations) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& iters = reg.GetCounter("rwr/iterations");
  Counter& calls = reg.GetCounter("rwr/calls");
  const uint64_t iters_before = iters.Value();
  const uint64_t calls_before = calls.Value();

  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 2.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(2, 0, 1.0);
  builder.AddEdge(0, 3, 1.0);
  CommGraph g = std::move(builder).Build();
  RwrScheme rwr({.k = 3}, {.reset = 0.1, .max_hops = 3});
  rwr.Compute(g, 0);

  EXPECT_EQ(calls.Value(), calls_before + 1);
  EXPECT_EQ(iters.Value(), iters_before + 3);  // h = 3 power iterations
}
#endif  // COMMSIG_OBS_DISABLED

}  // namespace
}  // namespace commsig::obs
