#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "json_check.h"

namespace commsig::obs {
namespace {

using commsig::obs_test::IsValidJson;

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::Global().Clear();
    TraceCollector::Global().SetEnabled(true);
  }
  void TearDown() override {
    TraceCollector::Global().SetEnabled(false);
    TraceCollector::Global().Clear();
  }
};

TEST_F(TraceTest, SpanRecordsWallTime) {
  {
    ScopedSpan span("test/sleepy");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  auto events = TraceCollector::Global().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test/sleepy");
  EXPECT_GE(events[0].dur_us, 1000u);  // slept >= 2ms, generous slack
  EXPECT_EQ(events[0].depth, 0u);
}

TEST_F(TraceTest, NestedSpansRecordDepthAndContainment) {
  {
    ScopedSpan outer("test/outer");
    {
      ScopedSpan inner("test/inner");
    }
  }
  auto events = TraceCollector::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  // Spans complete innermost-first.
  const SpanEvent& inner = events[0];
  const SpanEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "test/inner");
  EXPECT_STREQ(outer.name, "test/outer");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
}

TEST_F(TraceTest, SpansFeedDurationHistogramEvenWhenCollectionDisabled) {
  TraceCollector::Global().SetEnabled(false);
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("span/test/quiet_us");
  h.Reset();
  {
    ScopedSpan span("test/quiet");
  }
  EXPECT_TRUE(TraceCollector::Global().Events().empty());
  EXPECT_EQ(h.Snapshot().count, 1u);
}

TEST_F(TraceTest, ChromeTraceExportIsValidTraceEventJson) {
  {
    ScopedSpan a("test/export_a");
    ScopedSpan b("test/export \"quoted\\name\"");  // exercises escaping
  }
  std::string json = TraceCollector::Global().ToChromeTraceJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  // Structural requirements of the trace_event format.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
}

TEST_F(TraceTest, WriteChromeTraceFileRoundTrips) {
  {
    ScopedSpan span("test/file");
  }
  std::string path =
      ::testing::TempDir() + "/commsig_trace_test.json";
  ASSERT_TRUE(
      TraceCollector::Global().WriteChromeTraceFile(path).ok());
  std::string json = ReadWholeFile(path);
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("test/file"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, EmptyCollectorExportsValidEmptyTrace) {
  std::string json = TraceCollector::Global().ToChromeTraceJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

#ifndef COMMSIG_OBS_DISABLED
TEST_F(TraceTest, SpanMacroRecordsEvents) {
  {
    COMMSIG_SPAN("test/macro_span");
  }
  auto events = TraceCollector::Global().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test/macro_span");
}
#endif  // COMMSIG_OBS_DISABLED

}  // namespace
}  // namespace commsig::obs
