#include "obs/log.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json_check.h"

namespace commsig::obs {
namespace {

using commsig::obs_test::IsValidJson;

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// The sink is a process-wide singleton; every test restores the defaults
/// so ordering between tests (and other suites in this binary) stays moot.
class LogTest : public ::testing::Test {
 protected:
  LogTest() : path_(::testing::TempDir() + "/commsig_log_test.jsonl") {
    std::remove(path_.c_str());
    LogSink::Global().SetStderrEnabled(false);
    LogSink::Global().SetMinLevel(LogLevel::kDebug);
  }

  ~LogTest() override {
    LogSink::Global().CloseFile();
    LogSink::Global().SetMinLevel(LogLevel::kInfo);
    LogSink::Global().SetStderrEnabled(true);
    std::remove(path_.c_str());
  }

  std::string path_;
};

TEST(LogLevelTest, NamesAreStable) {
  EXPECT_EQ(LogLevelName(LogLevel::kDebug), "debug");
  EXPECT_EQ(LogLevelName(LogLevel::kInfo), "info");
  EXPECT_EQ(LogLevelName(LogLevel::kWarn), "warn");
  EXPECT_EQ(LogLevelName(LogLevel::kError), "error");
}

TEST(LogLevelTest, ParseRoundTripsAndIsCaseInsensitive) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError}) {
    LogLevel parsed = LogLevel::kInfo;
    EXPECT_TRUE(ParseLogLevel(LogLevelName(level), parsed));
    EXPECT_EQ(parsed, level);
  }
  LogLevel parsed = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("WARN", parsed));
  EXPECT_EQ(parsed, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("warning", parsed));
  EXPECT_EQ(parsed, LogLevel::kWarn);
}

TEST(LogLevelTest, ParseRejectsUnknownAndLeavesOutputUntouched) {
  LogLevel parsed = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("verbose", parsed));
  EXPECT_FALSE(ParseLogLevel("", parsed));
  EXPECT_EQ(parsed, LogLevel::kError);
}

TEST_F(LogTest, EventBelowMinLevelIsInert) {
  LogSink::Global().SetMinLevel(LogLevel::kWarn);
  const uint64_t before = LogSink::Global().lines_emitted();
  { LogEvent e = LogInfo("suppressed"); EXPECT_FALSE(e.enabled()); }
  { LogEvent e = LogDebug("suppressed"); EXPECT_FALSE(e.enabled()); }
  EXPECT_EQ(LogSink::Global().lines_emitted(), before);
  { LogEvent e = LogError("kept"); EXPECT_TRUE(e.enabled()); }
  EXPECT_EQ(LogSink::Global().lines_emitted(), before + 1);
}

TEST_F(LogTest, FileTargetReceivesOneValidJsonObjectPerLine) {
  ASSERT_TRUE(LogSink::Global().OpenFile(path_).ok());
  LogInfo("window_advanced")
      .U64("window", 17)
      .I64("drift", -3)
      .Double("ratio", 0.25)
      .Bool("incremental", true)
      .Str("scheme", "rwr(c=0.1)");
  LogWarn("weird \"quoted\"\nname").Str("path", "a\\b\tc");
  LogSink::Global().CloseFile();

  std::vector<std::string> lines = ReadLines(path_);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(IsValidJson(line)) << line;
  }
  EXPECT_NE(lines[0].find("\"event\":\"window_advanced\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"window\":17"), std::string::npos);
  EXPECT_NE(lines[0].find("\"drift\":-3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"incremental\":true"), std::string::npos);
  EXPECT_NE(lines[0].find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"ts\":\""), std::string::npos);
  // The escaper must have neutralized the quote/newline in the event name.
  EXPECT_NE(lines[1].find("weird \\\"quoted\\\"\\nname"), std::string::npos);
}

TEST_F(LogTest, FileTargetAppendsAcrossReopens) {
  ASSERT_TRUE(LogSink::Global().OpenFile(path_).ok());
  LogInfo("first_run");
  LogSink::Global().CloseFile();
  ASSERT_TRUE(LogSink::Global().OpenFile(path_).ok());
  LogInfo("second_run");
  LogSink::Global().CloseFile();
  std::vector<std::string> lines = ReadLines(path_);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("first_run"), std::string::npos);
  EXPECT_NE(lines[1].find("second_run"), std::string::npos);
}

TEST_F(LogTest, OpenFileFailsOnUnwritablePath) {
  EXPECT_FALSE(
      LogSink::Global().OpenFile("/nonexistent-dir/commsig.log").ok());
}

}  // namespace
}  // namespace commsig::obs
