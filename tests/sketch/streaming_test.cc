#include "sketch/streaming_signatures.h"

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/top_talkers.h"
#include "core/unexpected_talkers.h"
#include "data/flow_generator.h"
#include "obs/metrics.h"

namespace commsig {
namespace {

FlowDataset SmallFlows() {
  FlowGeneratorConfig cfg;
  cfg.num_local_hosts = 30;
  cfg.num_external_hosts = 500;
  cfg.num_windows = 2;
  cfg.seed = 77;
  return FlowTraceGenerator(cfg).Generate();
}

std::vector<TraceEvent> WindowEvents(const FlowDataset& ds, size_t window) {
  std::vector<TraceEvent> events;
  for (const TraceEvent& e : ds.events) {
    if (e.time / ds.window_length == window) events.push_back(e);
  }
  return events;
}

TEST(StreamingSignaturesTest, ObservesEverything) {
  FlowDataset ds = SmallFlows();
  StreamingSignatureBuilder builder(ds.local_hosts, {});
  builder.ObserveAll(ds.events);
  EXPECT_EQ(builder.events_observed(), ds.events.size());
}

TEST(StreamingSignaturesTest, UnknownFocalYieldsEmptySignature) {
  StreamingSignatureBuilder builder({1, 2}, {});
  EXPECT_TRUE(builder.TopTalkers(999, 10).empty());
  EXPECT_TRUE(builder.UnexpectedTalkers(999, 10).empty());
}

TEST(StreamingSignaturesTest, NoTrafficYieldsEmptySignature) {
  StreamingSignatureBuilder builder({1}, {});
  EXPECT_TRUE(builder.TopTalkers(1, 10).empty());
}

TEST(StreamingSignaturesTest, StreamingTopTalkersMatchesExact) {
  // On a single window, the streaming TT signature should be close (in
  // Jaccard distance) to the exact TT signature for every focal host.
  FlowDataset ds = SmallFlows();
  auto windows = ds.Windows();
  auto events = WindowEvents(ds, 0);

  StreamingSignatureBuilder builder(ds.local_hosts, {});
  builder.ObserveAll(events);

  TopTalkersScheme exact({.k = 10});
  double total_distance = 0.0;
  for (NodeId host : ds.local_hosts) {
    Signature approx = builder.TopTalkers(host, 10);
    Signature truth = exact.Compute(windows[0], host);
    total_distance +=
        Distance(DistanceKind::kJaccard, approx, truth);
  }
  double mean_distance = total_distance / ds.local_hosts.size();
  EXPECT_LT(mean_distance, 0.15);
}

TEST(StreamingSignaturesTest, StreamingUtRanksNicheAboveGlobal) {
  // Build a stream where every focal node hits one global service and one
  // private destination harder in UT terms.
  std::vector<NodeId> focal = {0, 1, 2, 3};
  StreamingSignatureBuilder builder(focal, {});
  const NodeId global = 100;
  for (NodeId host : focal) {
    // Heavy traffic to the shared service...
    for (int s = 0; s < 20; ++s) builder.Observe({host, global, 0, 1.0});
    // ...moderate traffic to a private destination.
    NodeId priv = 200 + host;
    for (int s = 0; s < 10; ++s) builder.Observe({host, priv, 0, 1.0});
  }
  Signature ut = builder.UnexpectedTalkers(0, 1);
  ASSERT_EQ(ut.size(), 1u);
  EXPECT_TRUE(ut.Contains(200));  // niche beats the 4x-shared service

  Signature tt = builder.TopTalkers(0, 1);
  ASSERT_EQ(tt.size(), 1u);
  EXPECT_TRUE(tt.Contains(global));  // TT ranks by raw volume
}

TEST(StreamingSignaturesTest, StreamingUtApproximatesExact) {
  FlowDataset ds = SmallFlows();
  auto windows = ds.Windows();
  auto events = WindowEvents(ds, 0);

  StreamingSignatureBuilder::Options opts;
  opts.heavy_hitter_capacity = 128;
  opts.cm_width = 8192;
  StreamingSignatureBuilder builder(ds.local_hosts, opts);
  builder.ObserveAll(events);

  // Exact UT on the aggregated graph. Note: the streaming in-degree is per
  // *event source occurrence set*, matching |I(j)| on the aggregated graph.
  UnexpectedTalkersScheme exact({.k = 10}, UtWeighting::kInverseInDegree);
  double total_distance = 0.0;
  for (NodeId host : ds.local_hosts) {
    Signature approx = builder.UnexpectedTalkers(host, 10);
    Signature truth = exact.Compute(windows[0], host);
    total_distance += Distance(DistanceKind::kJaccard, approx, truth);
  }
  EXPECT_LT(total_distance / ds.local_hosts.size(), 0.45);
}

TEST(StreamingSignaturesTest, CachedExtractionMatchesFresh) {
  // Repeated extraction without intervening observations must serve the
  // memoized signature, and it must be indistinguishable from a rebuild on
  // an identical, cache-cold builder.
  FlowDataset ds = SmallFlows();
  StreamingSignatureBuilder cached(ds.local_hosts, {});
  StreamingSignatureBuilder cold(ds.local_hosts, {});
  cached.ObserveAll(ds.events);
  cold.ObserveAll(ds.events);
#ifndef COMMSIG_OBS_DISABLED
  auto& hits =
      obs::MetricsRegistry::Global().GetCounter("sketch/signature_cache_hits");
#endif
  for (NodeId host : ds.local_hosts) {
    Signature first_tt = cached.TopTalkers(host, 10);
    Signature first_ut = cached.UnexpectedTalkers(host, 10);
#ifndef COMMSIG_OBS_DISABLED
    const uint64_t before = hits.Value();
#endif
    EXPECT_EQ(cached.TopTalkers(host, 10), first_tt);
    EXPECT_EQ(cached.UnexpectedTalkers(host, 10), first_ut);
#ifndef COMMSIG_OBS_DISABLED
    // The hit counter is instrumentation; it compiles to a no-op when the
    // obs macros are disabled, but the memoization itself must still hold.
    EXPECT_EQ(hits.Value(), before + 2);
#endif
    EXPECT_EQ(cold.TopTalkers(host, 10), first_tt);
    EXPECT_EQ(cold.UnexpectedTalkers(host, 10), first_ut);
  }
}

TEST(StreamingSignaturesTest, CacheInvalidatedByNewObservations) {
  std::vector<NodeId> focal = {0, 1};
  StreamingSignatureBuilder builder(focal, {});
  builder.Observe({0, 5, 0, 3.0});
  builder.Observe({1, 6, 0, 2.0});
  Signature before = builder.TopTalkers(0, 4);
  ASSERT_EQ(before.size(), 1u);
  // New traffic from focal 0 must invalidate its TT cache entry...
  builder.Observe({0, 7, 1, 9.0});
  Signature after = builder.TopTalkers(0, 4);
  EXPECT_EQ(after.size(), 2u);
  EXPECT_NE(after, before);
  // ...and a different k must never be served from the k-specific cache.
  EXPECT_EQ(builder.TopTalkers(0, 1).size(), 1u);
}

TEST(StreamingSignaturesTest, UtCacheInvalidatedByGlobalNovelty) {
  std::vector<NodeId> focal = {0};
  StreamingSignatureBuilder builder(focal, {});
  builder.Observe({0, 5, 0, 1.0});
  builder.Observe({3, 6, 0, 1.0});
  Signature before = builder.UnexpectedTalkers(0, 4);
  // A *different* source reaching focal-0's destination changes dst 5's
  // in-degree sketch: focal 0 observed nothing, yet its UT signature must
  // refresh (novelty is global). A cache-cold builder over the same events
  // is the ground truth a stale cache would diverge from.
  builder.Observe({4, 5, 1, 1.0});
  Signature after = builder.UnexpectedTalkers(0, 4);
  StreamingSignatureBuilder cold(focal, {});
  cold.Observe({0, 5, 0, 1.0});
  cold.Observe({3, 6, 0, 1.0});
  cold.Observe({4, 5, 1, 1.0});
  EXPECT_EQ(after, cold.UnexpectedTalkers(0, 4));
  ASSERT_EQ(after.size(), 1u);
  ASSERT_EQ(before.size(), 1u);
  EXPECT_LE(after.entries()[0].weight, before.entries()[0].weight);
}

TEST(StreamingSignaturesTest, MemoryIsBounded) {
  FlowDataset ds = SmallFlows();
  StreamingSignatureBuilder builder(ds.local_hosts, {});
  builder.ObserveAll(ds.events);
  // O(1) per node: generous bound of ~2 KB per distinct node + CM.
  size_t nodes = ds.interner.size();
  EXPECT_LT(builder.MemoryBytes(), nodes * 2048 + (1u << 22));
  EXPECT_GT(builder.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace commsig
