#include "sketch/count_min.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace commsig {
namespace {

TEST(CountMinTest, ExactForFewKeys) {
  CountMinSketch cm(1024, 4);
  cm.Add(1, 5.0);
  cm.Add(2, 3.0);
  cm.Add(1, 2.0);
  EXPECT_DOUBLE_EQ(cm.Estimate(1), 7.0);
  EXPECT_DOUBLE_EQ(cm.Estimate(2), 3.0);
  EXPECT_DOUBLE_EQ(cm.TotalCount(), 10.0);
}

TEST(CountMinTest, UnseenKeyMayBeZero) {
  CountMinSketch cm(1024, 4);
  cm.Add(1, 5.0);
  // With one key in a wide sketch, an unseen key almost surely maps to
  // empty counters somewhere.
  EXPECT_DOUBLE_EQ(cm.Estimate(999), 0.0);
}

TEST(CountMinTest, NeverUnderestimates) {
  Rng rng(1);
  CountMinSketch cm(128, 4);
  std::vector<double> truth(500, 0.0);
  for (int i = 0; i < 20000; ++i) {
    uint64_t key = rng.UniformInt(500);
    double w = 1.0 + static_cast<double>(rng.UniformInt(3));
    truth[key] += w;
    cm.Add(key, w);
  }
  for (uint64_t key = 0; key < 500; ++key) {
    EXPECT_GE(cm.Estimate(key) + 1e-9, truth[key]) << "key " << key;
  }
}

TEST(CountMinTest, EpsilonGuaranteeHoldsForMostKeys) {
  const double epsilon = 0.01, delta = 0.01;
  CountMinSketch cm = CountMinSketch::WithGuarantee(epsilon, delta);
  Rng rng(2);
  std::vector<double> truth(2000, 0.0);
  for (int i = 0; i < 100000; ++i) {
    uint64_t key = rng.UniformInt(2000);
    truth[key] += 1.0;
    cm.Add(key);
  }
  size_t violations = 0;
  for (uint64_t key = 0; key < 2000; ++key) {
    if (cm.Estimate(key) > truth[key] + epsilon * cm.TotalCount()) {
      ++violations;
    }
  }
  // P(violation) <= delta per key; allow generous slack.
  EXPECT_LE(violations, 2000 * delta * 5);
}

TEST(CountMinTest, WithGuaranteeSizesSensibly) {
  CountMinSketch cm = CountMinSketch::WithGuarantee(0.001, 0.01);
  EXPECT_GE(cm.width(), 2718u);
  EXPECT_GE(cm.depth(), 4u);
}

TEST(CountMinTest, MergeEqualsCombinedStream) {
  CountMinSketch a(256, 4, 7), b(256, 4, 7), combined(256, 4, 7);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    uint64_t key = rng.UniformInt(100);
    (i % 2 == 0 ? a : b).Add(key);
    combined.Add(key);
  }
  a.Merge(b);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_DOUBLE_EQ(a.Estimate(key), combined.Estimate(key));
  }
  EXPECT_DOUBLE_EQ(a.TotalCount(), combined.TotalCount());
}

TEST(CountMinTest, EdgeKeyIsInjective) {
  EXPECT_NE(CountMinSketch::EdgeKey(1, 2), CountMinSketch::EdgeKey(2, 1));
  EXPECT_EQ(CountMinSketch::EdgeKey(7, 9),
            (uint64_t{7} << 32) | uint64_t{9});
}

TEST(CountMinTest, MemoryBytesTracksDimensions) {
  CountMinSketch cm(100, 5);
  EXPECT_EQ(cm.MemoryBytes(), 100 * 5 * sizeof(double));
}

}  // namespace
}  // namespace commsig
