#include "sketch/fm_sketch.h"

#include <gtest/gtest.h>

namespace commsig {
namespace {

TEST(FmSketchTest, EmptyEstimatesNearZero) {
  FmSketch fm(64);
  EXPECT_LT(fm.Estimate(), 100.0);
}

TEST(FmSketchTest, DuplicatesAreIdempotent) {
  FmSketch a(64), b(64);
  for (int i = 0; i < 100; ++i) a.Add(42);
  b.Add(42);
  EXPECT_DOUBLE_EQ(a.Estimate(), b.Estimate());
}

class FmAccuracyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FmAccuracyTest, EstimateWithinThirtyPercent) {
  const size_t n = GetParam();
  FmSketch fm(256);
  for (size_t i = 0; i < n; ++i) fm.Add(i * 2654435761u + 17);
  double est = fm.Estimate();
  EXPECT_GT(est, 0.7 * static_cast<double>(n)) << "n=" << n;
  EXPECT_LT(est, 1.4 * static_cast<double>(n)) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, FmAccuracyTest,
                         ::testing::Values(1000, 10000, 100000, 500000));

TEST(FmSketchTest, MergeEstimatesUnionNotSum) {
  FmSketch a(256), b(256), u(256);
  for (uint64_t i = 0; i < 5000; ++i) {
    a.Add(i);
    u.Add(i);
  }
  for (uint64_t i = 0; i < 5000; ++i) {
    b.Add(i);  // same items
    u.Add(i);
  }
  a.Merge(b);
  // a merged with an identical set must estimate ~5000, not ~10000.
  EXPECT_DOUBLE_EQ(a.Estimate(), u.Estimate());
  EXPECT_LT(a.Estimate(), 5000 * 1.5);
}

TEST(FmSketchTest, MergeOfDisjointSetsCoversBoth) {
  FmSketch a(256), b(256);
  for (uint64_t i = 0; i < 3000; ++i) a.Add(i);
  for (uint64_t i = 100000; i < 103000; ++i) b.Add(i);
  double est_a = a.Estimate();
  a.Merge(b);
  EXPECT_GT(a.Estimate(), est_a * 1.5);
}

TEST(FmSketchTest, MonotoneUnderInsertion) {
  FmSketch fm(64);
  double prev = fm.Estimate();
  for (uint64_t i = 0; i < 10000; i += 1000) {
    for (uint64_t j = i; j < i + 1000; ++j) fm.Add(j);
    double cur = fm.Estimate();
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(FmSketchTest, MemoryFootprint) {
  FmSketch fm(64);
  EXPECT_EQ(fm.MemoryBytes(), 64 * sizeof(uint64_t));
}

TEST(FmSketchTest, SmallDegreeRegimeIsOrderOfMagnitudeRight) {
  // The UT scheme divides by FM-estimated in-degrees, which are often
  // small; the estimator may be biased here but must stay within ~3x.
  FmSketch fm(64);
  for (uint64_t i = 0; i < 20; ++i) fm.Add(i);
  EXPECT_GT(fm.Estimate(), 20.0 / 3.0);
  EXPECT_LT(fm.Estimate(), 20.0 * 5.0);
}

}  // namespace
}  // namespace commsig
