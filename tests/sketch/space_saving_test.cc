#include "sketch/space_saving.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace commsig {
namespace {

TEST(SpaceSavingTest, ExactBelowCapacity) {
  SpaceSaving ss(10);
  ss.Add(1, 5.0);
  ss.Add(2, 3.0);
  ss.Add(1, 2.0);
  EXPECT_DOUBLE_EQ(ss.Estimate(1), 7.0);
  EXPECT_DOUBLE_EQ(ss.Estimate(2), 3.0);
  auto items = ss.Items();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].key, 1u);
  EXPECT_DOUBLE_EQ(items[0].error, 0.0);
}

TEST(SpaceSavingTest, EvictsMinimumOnOverflow) {
  SpaceSaving ss(2);
  ss.Add(1, 10.0);
  ss.Add(2, 1.0);
  ss.Add(3, 1.0);  // evicts key 2, inherits count 1
  EXPECT_DOUBLE_EQ(ss.Estimate(2), 0.0);
  EXPECT_DOUBLE_EQ(ss.Estimate(3), 2.0);
  auto items = ss.Items();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[1].key, 3u);
  EXPECT_DOUBLE_EQ(items[1].error, 1.0);
}

TEST(SpaceSavingTest, OverestimatesNeverUnder) {
  Rng rng(1);
  SpaceSaving ss(20);
  std::vector<double> truth(200, 0.0);
  for (int i = 0; i < 20000; ++i) {
    // Zipf-ish stream: low keys much more frequent.
    uint64_t key = rng.UniformInt(rng.UniformInt(199) + 1);
    truth[key] += 1.0;
    ss.Add(key);
  }
  for (const auto& item : ss.Items()) {
    EXPECT_GE(item.count + 1e-9, truth[item.key]);
    EXPECT_GE(truth[item.key] + 1e-9, item.count - item.error);
  }
}

TEST(SpaceSavingTest, HeavyHittersAreRetained) {
  // Any key with count > total/capacity must be tracked.
  Rng rng(2);
  SpaceSaving ss(50);
  std::vector<double> truth(1000, 0.0);
  for (int i = 0; i < 50000; ++i) {
    uint64_t key;
    if (rng.Bernoulli(0.5)) {
      key = rng.UniformInt(10);  // heavy head
    } else {
      key = 10 + rng.UniformInt(990);
    }
    truth[key] += 1.0;
    ss.Add(key);
  }
  const double threshold = ss.TotalWeight() / 50.0;
  for (uint64_t key = 0; key < 1000; ++key) {
    if (truth[key] > threshold) {
      EXPECT_GT(ss.Estimate(key), 0.0) << "heavy key " << key << " lost";
    }
  }
}

TEST(SpaceSavingTest, ItemsSortedHeaviestFirst) {
  SpaceSaving ss(5);
  ss.Add(1, 1.0);
  ss.Add(2, 5.0);
  ss.Add(3, 3.0);
  auto items = ss.Items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].key, 2u);
  EXPECT_EQ(items[1].key, 3u);
  EXPECT_EQ(items[2].key, 1u);
}

TEST(SpaceSavingTest, TotalWeightAccumulates) {
  SpaceSaving ss(2);
  ss.Add(1, 2.0);
  ss.Add(2, 3.0);
  ss.Add(3, 4.0);  // eviction does not change the total
  EXPECT_DOUBLE_EQ(ss.TotalWeight(), 9.0);
}

TEST(SpaceSavingTest, CapacityRespected) {
  SpaceSaving ss(3);
  for (uint64_t key = 0; key < 100; ++key) ss.Add(key);
  EXPECT_LE(ss.size(), 3u);
}

}  // namespace
}  // namespace commsig
