// End-to-end tests reproducing the paper's qualitative findings in miniature:
// generate a synthetic enterprise-flow workload, compute TT / UT / RWR^3
// signatures per window, and verify the property orderings and application
// results the paper reports (Sections IV-V).

#include <memory>

#include <gtest/gtest.h>

#include "apps/masquerade_detector.h"
#include "apps/multiusage.h"
#include "core/distance.h"
#include "core/scheme.h"
#include "data/flow_generator.h"
#include "data/query_log_generator.h"
#include "eval/masquerade_sim.h"
#include "eval/perturb.h"
#include "eval/properties.h"

namespace commsig {
namespace {

constexpr size_t kK = 10;

struct FlowFixture {
  FlowDataset dataset;
  std::vector<CommGraph> windows;
  std::unique_ptr<SignatureScheme> tt, ut, rwr;

  FlowFixture() {
    FlowGeneratorConfig cfg;
    cfg.num_local_hosts = 60;
    cfg.num_external_hosts = 3000;
    cfg.num_windows = 3;
    cfg.seed = 2024;
    dataset = FlowTraceGenerator(cfg).Generate();
    windows = dataset.Windows();
    SchemeOptions opts{.k = kK, .restrict_to_opposite_partition = true};
    tt = *CreateScheme("tt", opts);
    ut = *CreateScheme("ut", opts);
    rwr = *CreateScheme("rwr(c=0.1,h=3)", opts);
  }

  PropertyEllipse Ellipse(const SignatureScheme& scheme,
                          DistanceKind kind) const {
    auto s0 = scheme.ComputeAll(windows[0], dataset.local_hosts);
    auto s1 = scheme.ComputeAll(windows[1], dataset.local_hosts);
    return SummarizeProperties(s0, s1, SignatureDistance(kind));
  }

  double SelfMatchAuc(const SignatureScheme& scheme,
                      DistanceKind kind) const {
    auto s0 = scheme.ComputeAll(windows[0], dataset.local_hosts);
    auto s1 = scheme.ComputeAll(windows[1], dataset.local_hosts);
    return MeanAuc(SelfMatchRoc(s0, s1, SignatureDistance(kind)));
  }
};

FlowFixture& Fixture() {
  static FlowFixture* fixture = new FlowFixture();
  return *fixture;
}

// --- Figure 1 shape: UT most unique, RWR most persistent, TT between. ----

TEST(IntegrationFlowTest, UtIsMoreUniqueThanRwr) {
  auto& f = Fixture();
  PropertyEllipse ut = f.Ellipse(*f.ut, DistanceKind::kScaledHellinger);
  PropertyEllipse rwr = f.Ellipse(*f.rwr, DistanceKind::kScaledHellinger);
  EXPECT_GT(ut.mean_uniqueness, rwr.mean_uniqueness);
}

TEST(IntegrationFlowTest, RwrIsMorePersistentThanUt) {
  auto& f = Fixture();
  PropertyEllipse ut = f.Ellipse(*f.ut, DistanceKind::kScaledHellinger);
  PropertyEllipse rwr = f.Ellipse(*f.rwr, DistanceKind::kScaledHellinger);
  EXPECT_GT(rwr.mean_persistence, ut.mean_persistence);
}

TEST(IntegrationFlowTest, TtLiesBetweenUtAndRwr) {
  auto& f = Fixture();
  for (DistanceKind kind :
       {DistanceKind::kJaccard, DistanceKind::kScaledHellinger}) {
    PropertyEllipse tt = f.Ellipse(*f.tt, kind);
    PropertyEllipse ut = f.Ellipse(*f.ut, kind);
    PropertyEllipse rwr = f.Ellipse(*f.rwr, kind);
    EXPECT_LE(rwr.mean_uniqueness, tt.mean_uniqueness + 0.05);
    EXPECT_LE(tt.mean_uniqueness, ut.mean_uniqueness + 0.05);
    EXPECT_LE(ut.mean_persistence, tt.mean_persistence + 0.05);
    EXPECT_LE(tt.mean_persistence, rwr.mean_persistence + 0.05);
  }
}

TEST(IntegrationFlowTest, UniquenessIsHighOverall) {
  // Distinct users should look distinct under every scheme.
  auto& f = Fixture();
  for (auto* scheme : {f.tt.get(), f.ut.get(), f.rwr.get()}) {
    PropertyEllipse e = f.Ellipse(*scheme, DistanceKind::kJaccard);
    EXPECT_GT(e.mean_uniqueness, 0.8) << scheme->name();
  }
}

// --- Figure 2/3(a) shape: good self-match AUC, multi-hop competitive. ----

TEST(IntegrationFlowTest, AllSchemesBeatRandomMatching) {
  auto& f = Fixture();
  for (auto* scheme : {f.tt.get(), f.ut.get(), f.rwr.get()}) {
    double auc = f.SelfMatchAuc(*scheme, DistanceKind::kScaledHellinger);
    EXPECT_GT(auc, 0.8) << scheme->name();
  }
}

TEST(IntegrationFlowTest, RwrAucCompetitiveWithOneHop) {
  auto& f = Fixture();
  double rwr = f.SelfMatchAuc(*f.rwr, DistanceKind::kScaledHellinger);
  double ut = f.SelfMatchAuc(*f.ut, DistanceKind::kScaledHellinger);
  EXPECT_GT(rwr, ut - 0.05);
}

// --- Figure 4 shape: TT most robust, UT least. --------------------------

TEST(IntegrationFlowTest, RobustnessOrderingUnderPerturbation) {
  auto& f = Fixture();
  CommGraph perturbed = Perturb(
      f.windows[0],
      {.insert_fraction = 0.4, .delete_fraction = 0.4, .seed = 5});
  SignatureDistance dist(DistanceKind::kScaledHellinger);
  auto auc = [&](const SignatureScheme& scheme) {
    auto original = scheme.ComputeAll(f.windows[0], f.dataset.local_hosts);
    auto shaken = scheme.ComputeAll(perturbed, f.dataset.local_hosts);
    return MeanAuc(MatchRoc(original, shaken, dist));
  };
  double tt = auc(*f.tt);
  double ut = auc(*f.ut);
  EXPECT_GT(tt, 0.9);
  EXPECT_GE(tt, ut - 0.02);  // TT at least as robust as UT
}

// --- Figure 5 shape: TT wins multiusage detection. -----------------------

TEST(IntegrationFlowTest, MultiusageDetectionRanksSiblingsHigh) {
  auto& f = Fixture();
  // Queries: every host belonging to a multi-IP user.
  std::vector<size_t> query_indices;
  std::vector<std::vector<size_t>> relevant_sets;
  for (size_t i = 0; i < f.dataset.local_hosts.size(); ++i) {
    NodeId host = f.dataset.local_hosts[i];
    const auto& siblings =
        f.dataset.hosts_of_user.at(f.dataset.user_of_host[host]);
    if (siblings.size() < 2) continue;
    std::vector<size_t> rel;
    for (NodeId s : siblings) {
      if (s != host) rel.push_back(s);  // host ids == indices here
    }
    query_indices.push_back(i);
    relevant_sets.push_back(std::move(rel));
  }
  ASSERT_FALSE(query_indices.empty());

  SignatureDistance dist(DistanceKind::kScaledHellinger);
  auto auc_for = [&](const SignatureScheme& scheme) {
    auto sigs = scheme.ComputeAll(f.windows[0], f.dataset.local_hosts);
    std::vector<Signature> queries;
    for (size_t qi : query_indices) queries.push_back(sigs[qi]);
    return MeanAuc(
        SetMatchRoc(queries, query_indices, sigs, relevant_sets, dist));
  };
  double tt = auc_for(*f.tt);
  double rwr = auc_for(*f.rwr);
  EXPECT_GT(tt, 0.85);
  EXPECT_GT(tt, rwr - 0.05);  // TT leads (or ties) as in Fig. 5
}

// --- Figure 6 shape: masquerade detection works, RWR strong at low f. ----

TEST(IntegrationFlowTest, MasqueradeDetectionRecoversSwaps) {
  auto& f = Fixture();
  MasqueradePlan plan =
      PlanMasquerade(f.dataset.local_hosts, /*fraction=*/0.1, /*seed=*/3);
  ASSERT_GE(plan.mapping.size(), 2u);
  CommGraph masked = ApplyMasquerade(f.windows[1], plan);

  SignatureDistance dist(DistanceKind::kScaledHellinger);
  auto accuracy_for = [&](const SignatureScheme& scheme) {
    auto s0 = scheme.ComputeAll(f.windows[0], f.dataset.local_hosts);
    auto s1 = scheme.ComputeAll(masked, f.dataset.local_hosts);
    MasqueradeDetector detector(dist, {.top_ell = 3, .delta_divisor = 5.0});
    auto detection = detector.Detect(f.dataset.local_hosts, s0, s1);
    return MasqueradeAccuracy(detection, plan, f.dataset.local_hosts);
  };
  double rwr = accuracy_for(*f.rwr);
  EXPECT_GT(rwr, 0.7);
}

// --- Query logs (Figure 3(b)): everything is near-perfect. ---------------

TEST(IntegrationQueryLogTest, AllSchemesNearPerfect) {
  QueryLogConfig cfg;
  cfg.num_users = 120;
  cfg.num_tables = 200;
  cfg.num_windows = 2;
  cfg.seed = 11;
  QueryLogDataset ds = QueryLogGenerator(cfg).Generate();
  auto windows = ds.Windows();
  SchemeOptions opts{.k = 3, .restrict_to_opposite_partition = true};
  for (const char* spec : {"tt", "ut", "rwr(c=0.1,h=3)"}) {
    auto scheme = *CreateScheme(spec, opts);
    auto s0 = scheme->ComputeAll(windows[0], ds.users);
    auto s1 = scheme->ComputeAll(windows[1], ds.users);
    double auc = MeanAuc(
        SelfMatchRoc(s0, s1, SignatureDistance(DistanceKind::kJaccard)));
    EXPECT_GT(auc, 0.95) << spec;
  }
}

}  // namespace
}  // namespace commsig
