#include "robust/fault_injector.h"

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace commsig {
namespace {

std::vector<TraceEvent> MakeEvents(size_t n) {
  std::vector<TraceEvent> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    events.push_back({static_cast<NodeId>(i % 10),
                      static_cast<NodeId>(10 + i % 20), i * 10, 1.5});
  }
  return events;
}

TEST(FaultInjectorTest, ZeroProbabilitiesAreIdentity) {
  FaultInjector injector(FaultInjector::Options{});
  auto events = MakeEvents(500);
  auto out = injector.PerturbEvents(events);
  EXPECT_EQ(out, events);
  EXPECT_EQ(injector.report().Total(), 0u);
}

TEST(FaultInjectorTest, SameSeedSameFaults) {
  FaultInjector::Options opts;
  opts.seed = 99;
  opts.p_drop = 0.05;
  opts.p_duplicate = 0.05;
  opts.p_corrupt_weight = 0.05;
  opts.p_corrupt_time = 0.05;
  opts.p_swap = 0.05;
  auto events = MakeEvents(2000);
  FaultInjector a(opts), b(opts);
  auto out_a = a.PerturbEvents(events);
  auto out_b = b.PerturbEvents(events);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(out_a[i].src, out_b[i].src);
    EXPECT_EQ(out_a[i].dst, out_b[i].dst);
    EXPECT_EQ(out_a[i].time, out_b[i].time);
    // NaN != NaN, so compare corrupted weights bitwise.
    EXPECT_EQ(std::memcmp(&out_a[i].weight, &out_b[i].weight,
                          sizeof(double)),
              0);
  }
  EXPECT_EQ(a.report().Total(), b.report().Total());
}

TEST(FaultInjectorTest, DifferentSeedsDiffer) {
  FaultInjector::Options opts;
  opts.p_drop = 0.1;
  opts.seed = 1;
  FaultInjector a(opts);
  opts.seed = 2;
  FaultInjector b(opts);
  auto events = MakeEvents(2000);
  auto out_a = a.PerturbEvents(events);
  auto out_b = b.PerturbEvents(events);
  EXPECT_NE(out_a, out_b);
}

TEST(FaultInjectorTest, ReportCountsMatchOutput) {
  FaultInjector::Options opts;
  opts.seed = 7;
  opts.p_drop = 0.1;
  auto events = MakeEvents(5000);
  FaultInjector injector(opts);
  auto out = injector.PerturbEvents(events);
  EXPECT_EQ(out.size(), events.size() - injector.report().dropped);
  // ~500 expected; a 5x band catches logic inversions without flaking.
  EXPECT_GT(injector.report().dropped, 100u);
  EXPECT_LT(injector.report().dropped, 2500u);
}

TEST(FaultInjectorTest, DuplicatesGrowTheStream) {
  FaultInjector::Options opts;
  opts.seed = 7;
  opts.p_duplicate = 0.1;
  auto events = MakeEvents(5000);
  FaultInjector injector(opts);
  auto out = injector.PerturbEvents(events);
  EXPECT_EQ(out.size(), events.size() + injector.report().duplicated);
}

TEST(FaultInjectorTest, CorruptedWeightsAreActuallyBad) {
  FaultInjector::Options opts;
  opts.seed = 3;
  opts.p_corrupt_weight = 1.0;  // corrupt every event
  auto events = MakeEvents(200);
  FaultInjector injector(opts);
  auto out = injector.PerturbEvents(events);
  ASSERT_EQ(out.size(), events.size());
  size_t bad = 0;
  for (const TraceEvent& e : out) {
    if (!std::isfinite(e.weight) || e.weight <= 0.0 || e.weight > 1e6) ++bad;
  }
  EXPECT_EQ(bad, out.size());
  EXPECT_EQ(injector.report().weights_corrupted, events.size());
}

TEST(FaultInjectorTest, ReportToStringNamesEveryCounter) {
  FaultInjector injector(FaultInjector::Options{});
  std::string s = injector.report().ToString();
  EXPECT_NE(s.find("dropped="), std::string::npos);
  EXPECT_NE(s.find("swapped="), std::string::npos);
}

class FaultInjectorFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("commsig_faultfile_" + std::to_string(::getpid()) + ".bin");
    std::ofstream out(path_, std::ios::binary);
    content_.assign(4096, 'A');
    out.write(content_.data(), static_cast<std::streamsize>(content_.size()));
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
  std::string content_;
};

TEST_F(FaultInjectorFileTest, CorruptFileBitsChangesContent) {
  FaultInjector::Options opts;
  opts.seed = 11;
  FaultInjector injector(opts);
  ASSERT_TRUE(injector.CorruptFileBits(path_.string(), 8).ok());
  std::ifstream in(path_, std::ios::binary);
  std::string after((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  EXPECT_EQ(after.size(), content_.size());  // flips, not truncation
  EXPECT_NE(after, content_);
  size_t changed = 0;
  for (size_t i = 0; i < after.size(); ++i) {
    if (after[i] != content_[i]) ++changed;
  }
  EXPECT_LE(changed, 8u);  // at most one byte per flip
  EXPECT_GE(changed, 1u);
}

TEST_F(FaultInjectorFileTest, TruncateShortensFile) {
  FaultInjector::Options opts;
  opts.seed = 11;
  FaultInjector injector(opts);
  uint64_t new_size = 0;
  ASSERT_TRUE(injector.TruncateFileRandomly(path_.string(), &new_size).ok());
  EXPECT_LT(new_size, content_.size());
  EXPECT_EQ(std::filesystem::file_size(path_), new_size);
}

TEST_F(FaultInjectorFileTest, MissingFileIsIOError) {
  FaultInjector injector(FaultInjector::Options{});
  EXPECT_TRUE(
      injector.CorruptFileBits("/no/such/file.bin", 1).IsIOError());
  EXPECT_TRUE(
      injector.TruncateFileRandomly("/no/such/file.bin").IsIOError());
}

}  // namespace
}  // namespace commsig
