// The numeric degradation ladder: RWR convergence reporting and the
// RWR -> RWR^h fallback, plus the ingest-side guards (TryAddEdge, windower
// event dropping, FromTopK weight filtering) that keep corrupt values out
// of signatures.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/rwr.h"
#include "core/signature.h"
#include "graph/graph_builder.h"
#include "graph/windower.h"

namespace commsig {
namespace {

CommGraph RingGraph(size_t n) {
  GraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) {
    builder.AddEdge(v, (v + 1) % n, 1.0);
  }
  return std::move(builder).Build();
}

TEST(RwrConvergenceTest, SolveReportsConvergence) {
  RwrScheme scheme({.k = 5}, RwrOptions{});
  auto solve = scheme.Solve(RingGraph(8), 0);
  EXPECT_TRUE(solve.converged);
  EXPECT_LT(solve.residual, scheme.rwr_options().tolerance);
  EXPECT_GT(solve.iterations, 0u);
  double sum = 0.0;
  for (double p : solve.probabilities) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(RwrConvergenceTest, IterationCapReportsNonConvergence) {
  RwrOptions opts;
  opts.max_iterations = 1;  // cannot reach 1e-10 in one step
  opts.fallback_hops = 0;
  RwrScheme scheme({.k = 5}, opts);
  auto solve = scheme.Solve(RingGraph(16), 0);
  EXPECT_FALSE(solve.converged);
  EXPECT_EQ(solve.iterations, 1u);
  EXPECT_GT(solve.residual, opts.tolerance);
}

TEST(RwrConvergenceTest, TruncatedWalkConvergesByDefinition) {
  RwrOptions opts;
  opts.max_hops = 3;
  RwrScheme scheme({.k = 5}, opts);
  EXPECT_TRUE(scheme.Solve(RingGraph(16), 0).converged);
}

TEST(RwrConvergenceTest, ComputeFallsBackToTruncatedWalk) {
  RwrOptions starved;
  starved.max_iterations = 1;
  starved.fallback_hops = 4;
  RwrScheme scheme({.k = 5}, starved);

  RwrOptions truncated;
  truncated.max_hops = 4;
  RwrScheme reference({.k = 5}, truncated);

  CommGraph g = RingGraph(16);
  Signature fell_back = scheme.Compute(g, 0);
  Signature expected = reference.Compute(g, 0);
  ASSERT_EQ(fell_back.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(fell_back.entries()[i].node, expected.entries()[i].node);
    EXPECT_DOUBLE_EQ(fell_back.entries()[i].weight,
                     expected.entries()[i].weight);
  }
}

TEST(RwrConvergenceTest, FallbackDisabledUsesUnconvergedVector) {
  RwrOptions opts;
  opts.max_iterations = 1;
  opts.fallback_hops = 0;
  RwrScheme scheme({.k = 5}, opts);
  // Still yields a (best-effort) signature; the point is it does not abort.
  Signature s = scheme.Compute(RingGraph(8), 0);
  EXPECT_FALSE(s.empty());
}

TEST(TryAddEdgeTest, RejectsWithoutMutating) {
  GraphBuilder builder(4);
  EXPECT_TRUE(builder.TryAddEdge(0, 1, 2.0));
  EXPECT_FALSE(builder.TryAddEdge(4, 1, 1.0));  // src out of range
  EXPECT_FALSE(builder.TryAddEdge(0, 9, 1.0));  // dst out of range
  EXPECT_FALSE(builder.TryAddEdge(0, 1, 0.0));
  EXPECT_FALSE(builder.TryAddEdge(0, 1, -3.0));
  EXPECT_FALSE(
      builder.TryAddEdge(0, 1, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(
      builder.TryAddEdge(0, 1, std::numeric_limits<double>::infinity()));
  CommGraph g = std::move(builder).Build();
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 2.0);  // only the one good edge
}

TEST(WindowerRobustnessTest, DropsCorruptEventsInsteadOfCrashing) {
  TraceWindower windower(4, 100);
  std::vector<TraceEvent> events = {
      {0, 1, 10, 1.0},
      {9, 1, 20, 1.0},  // src out of universe
      {0, 7, 30, 1.0},  // dst out of universe
      {1, 2, 40, std::numeric_limits<double>::quiet_NaN()},
      {1, 2, 50, -2.0},
      {2, 3, 60, 4.0},
  };
  auto graphs = windower.Split(events);
  ASSERT_EQ(graphs.size(), 1u);
  EXPECT_DOUBLE_EQ(graphs[0].TotalWeight(), 5.0);  // 1.0 + 4.0
}

TEST(WindowerRobustnessTest, ZeroWindowLengthClampedNotUb) {
  TraceWindower windower(2, 0);  // would divide by zero unclamped
  EXPECT_EQ(windower.window_length(), 1u);
  EXPECT_EQ(windower.WindowOf(5), 5u);
}

TEST(FromTopKGuardTest, NonFiniteWeightsNeverEnterSignatures) {
  std::vector<Signature::Entry> candidates = {
      {0, 0.5},
      {1, std::numeric_limits<double>::infinity()},
      {2, std::numeric_limits<double>::quiet_NaN()},
      {3, 0.25},
      {4, -1.0},
      {5, 0.0},
  };
  Signature s = Signature::FromTopK(std::move(candidates), 10);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.entries()[0].node, 0u);
  EXPECT_EQ(s.entries()[1].node, 3u);
  for (const auto& e : s.entries()) {
    EXPECT_TRUE(std::isfinite(e.weight));
    EXPECT_GT(e.weight, 0.0);
  }
}

}  // namespace
}  // namespace commsig
