#include "robust/checkpoint.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "robust/failpoints.h"

namespace commsig {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("commsig_ckpt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Flips one bit somewhere in the middle of a checkpoint file.
  void FlipBit(const fs::path& path, size_t offset) {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    ASSERT_TRUE(f.read(&byte, 1));
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    ASSERT_TRUE(f.write(&byte, 1));
  }

  fs::path dir_;
};

TEST_F(CheckpointTest, MissingDirectoryIsNotFound) {
  CheckpointManager manager(dir_.string());
  auto r = manager.LoadLatest();
  EXPECT_TRUE(r.status().IsNotFound()) << r.status().ToString();
}

TEST_F(CheckpointTest, SaveThenLoadRoundTrips) {
  CheckpointManager manager(dir_.string());
  ASSERT_TRUE(manager.Save(42, "hello checkpoint").ok());
  auto r = manager.LoadLatest();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->sequence, 42u);
  EXPECT_EQ(r->payload, "hello checkpoint");
  EXPECT_FALSE(r->recovered_from_fallback);
  EXPECT_EQ(r->corrupt_skipped, 0u);
}

TEST_F(CheckpointTest, LoadsNewestOfMany) {
  CheckpointManager manager(dir_.string());
  ASSERT_TRUE(manager.Save(10, "old").ok());
  ASSERT_TRUE(manager.Save(20, "new").ok());
  auto r = manager.LoadLatest();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->sequence, 20u);
  EXPECT_EQ(r->payload, "new");
}

TEST_F(CheckpointTest, BitFlippedNewestFallsBackToPreviousGood) {
  CheckpointManager manager(dir_.string());
  ASSERT_TRUE(manager.Save(10, std::string(256, 'a')).ok());
  ASSERT_TRUE(manager.Save(20, std::string(256, 'b')).ok());
  // Corrupt the newest file's payload region.
  fs::path newest;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().filename().string().find("20.ckpt") !=
        std::string::npos) {
      newest = entry.path();
    }
  }
  ASSERT_FALSE(newest.empty());
  FlipBit(newest, 100);

  auto r = manager.LoadLatest();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->sequence, 10u);
  EXPECT_EQ(r->payload, std::string(256, 'a'));
  EXPECT_TRUE(r->recovered_from_fallback);
  EXPECT_EQ(r->corrupt_skipped, 1u);
}

TEST_F(CheckpointTest, TruncatedNewestFallsBack) {
  CheckpointManager manager(dir_.string());
  ASSERT_TRUE(manager.Save(1, std::string(512, 'x')).ok());
  ASSERT_TRUE(manager.Save(2, std::string(512, 'y')).ok());
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().filename().string().find("2.ckpt") !=
        std::string::npos) {
      fs::resize_file(entry.path(), 64);
    }
  }
  auto r = manager.LoadLatest();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->sequence, 1u);
}

TEST_F(CheckpointTest, AllCorruptIsCorruption) {
  CheckpointManager manager(dir_.string());
  ASSERT_TRUE(manager.Save(1, "only").ok());
  for (const auto& entry : fs::directory_iterator(dir_)) {
    FlipBit(entry.path(), 30);
  }
  auto r = manager.LoadLatest();
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
}

TEST_F(CheckpointTest, PrunesBeyondKeep) {
  CheckpointManager::Options opts;
  opts.keep = 2;
  CheckpointManager manager(dir_.string(), opts);
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    ASSERT_TRUE(manager.Save(seq, "p").ok());
  }
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2u);
  auto r = manager.LoadLatest();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->sequence, 5u);
}

TEST_F(CheckpointTest, KeepIsClampedToTwo) {
  CheckpointManager::Options opts;
  opts.keep = 0;  // a single retained checkpoint would break the fallback
  CheckpointManager manager(dir_.string(), opts);
  ASSERT_TRUE(manager.Save(1, "a").ok());
  ASSERT_TRUE(manager.Save(2, "b").ok());
  ASSERT_TRUE(manager.Save(3, "c").ok());
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2u);
}

TEST_F(CheckpointTest, StrayTmpAndForeignFilesAreIgnored) {
  CheckpointManager manager(dir_.string());
  ASSERT_TRUE(manager.Save(7, "good").ok());
  // Simulate a crash mid-write plus unrelated clutter.
  std::ofstream(dir_ / "ckpt.tmp") << "half-written";
  std::ofstream(dir_ / "notes.txt") << "unrelated";
  std::ofstream(dir_ / "ckpt.notanumber.ckpt") << "junk";
  auto r = manager.LoadLatest();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->sequence, 7u);
  EXPECT_EQ(r->payload, "good");
}

TEST_F(CheckpointTest, EmptyPayloadRoundTrips) {
  CheckpointManager manager(dir_.string());
  ASSERT_TRUE(manager.Save(0, "").ok());
  auto r = manager.LoadLatest();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->payload.empty());
}

// Durability regression tests: Save must route its whole fsync-the-tmp,
// rename, fsync-the-directory dance through the fail-point layer, fail
// loudly on any injected fault, and never leave a half-written file under
// the live checkpoint name (except for the torn rename, whose tear the
// CRC-validated loader must absorb via the previous generation).
class CheckpointDurabilityTest : public CheckpointTest {
 protected:
  void SetUp() override {
    CheckpointTest::SetUp();
    if (!failpoints::Enabled()) {
      GTEST_SKIP() << "built without COMMSIG_FAILPOINTS";
    }
    FailPointRegistry::Global().Reset();
  }
  void TearDown() override {
    if (failpoints::Enabled()) FailPointRegistry::Global().Reset();
    CheckpointTest::TearDown();
  }

  size_t FileCount() const {
    size_t files = 0;
    if (fs::exists(dir_)) {
      for (const auto& entry : fs::directory_iterator(dir_)) {
        (void)entry;
        ++files;
      }
    }
    return files;
  }
};

TEST_F(CheckpointDurabilityTest, SaveHitsEveryDurabilitySite) {
  // Arm every durability site with a spec that never fires (after=1000),
  // then Save once: each site must record a hit, proving the whole
  // open → write → fsync → rename → dirsync dance routes through the
  // fail-point layer and the chaos schedule can target any stage of it.
  auto& reg = FailPointRegistry::Global();
  const char* kSites[] = {"checkpoint/open", "checkpoint/write",
                          "checkpoint/fsync", "checkpoint/rename",
                          "checkpoint/dirsync"};
  for (const char* site : kSites) {
    reg.Arm(site, {FailPointKind::kEio, /*after=*/1000, /*count=*/1});
  }
  CheckpointManager manager(dir_.string());
  ASSERT_TRUE(manager.Save(1, "payload").ok());
  for (const char* site : kSites) {
    EXPECT_GE(reg.stats(site).hits, 1u) << site;
    EXPECT_EQ(reg.stats(site).fires, 0u) << site;
  }
}

TEST_F(CheckpointDurabilityTest, FsyncFailureFailsTheSaveAndRemovesTmp) {
  CheckpointManager manager(dir_.string());
  FailPointRegistry::Global().Arm("checkpoint/fsync",
                                  {FailPointKind::kFsyncFail, 0, 1});
  Status s = manager.Save(1, "must not survive");
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(FileCount(), 0u);  // neither tmp nor live name left behind
  // A clean retry (the supervisor's RetryPolicy) must then succeed.
  ASSERT_TRUE(manager.Save(1, "second try").ok());
  auto r = manager.LoadLatest();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->payload, "second try");
}

TEST_F(CheckpointDurabilityTest, ShortWriteNeverReachesTheLiveName) {
  CheckpointManager manager(dir_.string());
  FailPointRegistry::Global().Arm("checkpoint/write",
                                  {FailPointKind::kShortWrite, 0, 1});
  EXPECT_TRUE(manager.Save(1, std::string(4096, 'x')).IsIOError());
  EXPECT_EQ(FileCount(), 0u);
}

TEST_F(CheckpointDurabilityTest, EnospcOnOpenFailsCleanly) {
  CheckpointManager manager(dir_.string());
  FailPointRegistry::Global().Arm("checkpoint/open",
                                  {FailPointKind::kEnospc, 0, 1});
  EXPECT_TRUE(manager.Save(1, "p").IsIOError());
  EXPECT_EQ(FileCount(), 0u);
}

TEST_F(CheckpointDurabilityTest, TornRenameFallsBackToPreviousGeneration) {
  CheckpointManager manager(dir_.string());
  ASSERT_TRUE(manager.Save(1, std::string(256, 'a')).ok());
  // The torn rename reports success — the tear lands silently under the
  // live name, exactly like a crash between rename and dir-fsync.
  FailPointRegistry::Global().Arm("checkpoint/rename",
                                  {FailPointKind::kTornRename, 0, 1});
  ASSERT_TRUE(manager.Save(2, std::string(256, 'b')).ok());
  auto r = manager.LoadLatest();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->sequence, 1u);
  EXPECT_EQ(r->payload, std::string(256, 'a'));
  EXPECT_TRUE(r->recovered_from_fallback);
  EXPECT_EQ(r->corrupt_skipped, 1u);
}

TEST_F(CheckpointDurabilityTest, DirsyncFailureSurfacesAsSaveFailure) {
  CheckpointManager manager(dir_.string());
  FailPointRegistry::Global().Arm("checkpoint/dirsync",
                                  {FailPointKind::kFsyncFail, 0, 1});
  // The rename already landed, but the save must still report failure: the
  // directory entry is not durable until the dirsync, and the caller's
  // retry rewrites the checkpoint from scratch.
  EXPECT_TRUE(manager.Save(1, "p").IsIOError());
}

}  // namespace
}  // namespace commsig
