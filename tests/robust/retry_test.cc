#include "robust/retry.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace commsig {
namespace {

TEST(IsRetryableIoTest, OnlyIoErrorsAreRetryable) {
  EXPECT_TRUE(IsRetryableIo(Status::IOError("disk hiccup")));
  EXPECT_FALSE(IsRetryableIo(Status::OK()));
  EXPECT_FALSE(IsRetryableIo(Status::Corruption("bad crc")));
  EXPECT_FALSE(IsRetryableIo(Status::NotFound("gone")));
  EXPECT_FALSE(IsRetryableIo(Status::InvalidArgument("bad flag")));
}

TEST(BackoffDelayMsTest, GrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 50;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_EQ(BackoffDelayMs(policy, 0, rng), 10u);
  EXPECT_EQ(BackoffDelayMs(policy, 1, rng), 20u);
  EXPECT_EQ(BackoffDelayMs(policy, 2, rng), 40u);
  EXPECT_EQ(BackoffDelayMs(policy, 3, rng), 50u);  // capped
  EXPECT_EQ(BackoffDelayMs(policy, 30, rng), 50u);
}

TEST(BackoffDelayMsTest, JitterStaysWithinBand) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 100;
  policy.multiplier = 1.0;
  policy.max_backoff_ms = 1000;
  policy.jitter = 0.25;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const uint64_t d = BackoffDelayMs(policy, 0, rng);
    EXPECT_GE(d, 75u);
    EXPECT_LE(d, 125u);
  }
}

TEST(BackoffDelayMsTest, SubUnitMultiplierIsClampedUp) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10;
  policy.multiplier = 0.1;  // nonsense; must not shrink the backoff
  policy.max_backoff_ms = 1000;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_EQ(BackoffDelayMs(policy, 5, rng), 10u);
}

class RetrierTest : public ::testing::Test {
 protected:
  /// A policy with deterministic, instantly-recorded sleeps.
  Retrier MakeRetrier(uint32_t max_attempts, uint64_t deadline_ms = 0) {
    RetryPolicy policy;
    policy.max_attempts = max_attempts;
    policy.initial_backoff_ms = 10;
    policy.multiplier = 2.0;
    policy.max_backoff_ms = 1000;
    policy.jitter = 0.0;
    policy.deadline_ms = deadline_ms;
    Retrier retrier(policy);
    return retrier;
  }

  std::vector<uint64_t> sleeps_;
};

TEST_F(RetrierTest, SucceedsAfterTransientFailures) {
  Retrier retrier = MakeRetrier(4);
  retrier.SetSleepFnForTest(
      [this](uint64_t ms) { sleeps_.push_back(ms); });
  int calls = 0;
  Status s = retrier.Run("op", [&calls]() {
    return ++calls < 3 ? Status::IOError("transient") : Status::OK();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retrier.retries(), 2u);
  EXPECT_EQ(retrier.exhausted(), 0u);
  ASSERT_EQ(sleeps_.size(), 2u);
  EXPECT_EQ(sleeps_[0], 10u);
  EXPECT_EQ(sleeps_[1], 20u);  // exponential, jitter off
}

TEST_F(RetrierTest, ExhaustsAfterMaxAttempts) {
  Retrier retrier = MakeRetrier(3);
  retrier.SetSleepFnForTest([](uint64_t) {});
  int calls = 0;
  Status s = retrier.Run("op", [&calls]() {
    ++calls;
    return Status::IOError("still broken");
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retrier.retries(), 2u);
  EXPECT_EQ(retrier.exhausted(), 1u);
}

TEST_F(RetrierTest, NonRetryableFailsImmediately) {
  Retrier retrier = MakeRetrier(5);
  retrier.SetSleepFnForTest([](uint64_t) { FAIL() << "must not sleep"; });
  int calls = 0;
  Status s = retrier.Run("op", [&calls]() {
    ++calls;
    return Status::Corruption("determinate");
  });
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retrier.retries(), 0u);
  EXPECT_EQ(retrier.exhausted(), 0u);
}

TEST_F(RetrierTest, DeadlineStopsRetrying) {
  // Backoffs would be 10 + 20 + 40...; a 25ms deadline admits only the
  // first retry.
  Retrier retrier = MakeRetrier(10, /*deadline_ms=*/25);
  retrier.SetSleepFnForTest(
      [this](uint64_t ms) { sleeps_.push_back(ms); });
  int calls = 0;
  Status s = retrier.Run("op", [&calls]() {
    ++calls;
    return Status::IOError("slow disk");
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(retrier.retries(), 1u);
  EXPECT_EQ(retrier.exhausted(), 1u);
}

TEST_F(RetrierTest, CountersAccumulateAcrossRuns) {
  Retrier retrier = MakeRetrier(2);
  retrier.SetSleepFnForTest([](uint64_t) {});
  for (int i = 0; i < 3; ++i) {
    int calls = 0;
    Status s = retrier.Run("op", [&calls]() {
      return ++calls < 2 ? Status::IOError("once") : Status::OK();
    });
    EXPECT_TRUE(s.ok());
  }
  EXPECT_EQ(retrier.retries(), 3u);
}

}  // namespace
}  // namespace commsig
