// The runtime load-shedding ladder (DegradationController) — distinct from
// degradation_test.cc, which covers the numeric RWR fallback ladder.

#include "robust/degradation.h"

#include <gtest/gtest.h>

#include "obs/health.h"

namespace commsig {
namespace {

class DegradationLadderTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::HealthRegistry::Global().Reset(); }
  void TearDown() override { obs::HealthRegistry::Global().Reset(); }
};

TEST_F(DegradationLadderTest, TierNamesAreStable) {
  EXPECT_EQ(DegradationTierName(DegradationTier::kOk), "ok");
  EXPECT_EQ(DegradationTierName(DegradationTier::kShedTracing),
            "shed_tracing");
  EXPECT_EQ(DegradationTierName(DegradationTier::kWidenCheckpoints),
            "widen_checkpoints");
  EXPECT_EQ(DegradationTierName(DegradationTier::kSketchOnly), "sketch_only");
}

TEST_F(DegradationLadderTest, StartsHealthyWithNoShedding) {
  DegradationController ctrl;
  EXPECT_EQ(ctrl.tier(), DegradationTier::kOk);
  EXPECT_FALSE(ctrl.shed_tracing());
  EXPECT_EQ(ctrl.checkpoint_stretch(), 1u);
  EXPECT_FALSE(ctrl.sketch_only());
  EXPECT_EQ(ctrl.health(), obs::HealthLevel::kOk);
}

TEST_F(DegradationLadderTest, EscalatesOneTierPerBadStreak) {
  DegradationController::Options opts;
  opts.escalate_after = 2;
  opts.checkpoint_stretch = 8;
  DegradationController ctrl(opts);

  ctrl.ReportFailure("io");
  EXPECT_EQ(ctrl.tier(), DegradationTier::kOk);  // streak of 1 < 2
  ctrl.ReportFailure("io");
  EXPECT_EQ(ctrl.tier(), DegradationTier::kShedTracing);
  EXPECT_TRUE(ctrl.shed_tracing());
  EXPECT_EQ(ctrl.checkpoint_stretch(), 1u);  // stretch starts at tier 2

  ctrl.ReportFailure("io");
  ctrl.ReportFailure("io");
  EXPECT_EQ(ctrl.tier(), DegradationTier::kWidenCheckpoints);
  EXPECT_EQ(ctrl.checkpoint_stretch(), 8u);
  EXPECT_FALSE(ctrl.sketch_only());

  ctrl.ReportOverload("budget");
  ctrl.ReportOverload("budget");
  EXPECT_EQ(ctrl.tier(), DegradationTier::kSketchOnly);
  EXPECT_TRUE(ctrl.sketch_only());
  EXPECT_EQ(ctrl.transitions(), 3u);

  // Already at the top: more bad signals cannot overflow the ladder.
  ctrl.ReportFailure("io");
  ctrl.ReportFailure("io");
  ctrl.ReportFailure("io");
  EXPECT_EQ(ctrl.tier(), DegradationTier::kSketchOnly);
}

TEST_F(DegradationLadderTest, HealthySignalsRecoverOneTierAtATime) {
  DegradationController::Options opts;
  opts.escalate_after = 1;
  opts.recover_after = 3;
  DegradationController ctrl(opts);
  ctrl.ReportFailure("a");
  ctrl.ReportFailure("b");
  ASSERT_EQ(ctrl.tier(), DegradationTier::kWidenCheckpoints);

  ctrl.ReportHealthy();
  ctrl.ReportHealthy();
  EXPECT_EQ(ctrl.tier(), DegradationTier::kWidenCheckpoints);
  ctrl.ReportHealthy();
  EXPECT_EQ(ctrl.tier(), DegradationTier::kShedTracing);
  ctrl.ReportHealthy();
  ctrl.ReportHealthy();
  ctrl.ReportHealthy();
  EXPECT_EQ(ctrl.tier(), DegradationTier::kOk);

  // Fully recovered: healthy signals are now a no-op.
  for (int i = 0; i < 10; ++i) ctrl.ReportHealthy();
  EXPECT_EQ(ctrl.tier(), DegradationTier::kOk);
}

TEST_F(DegradationLadderTest, BadSignalResetsRecoveryStreak) {
  DegradationController::Options opts;
  opts.escalate_after = 1;
  opts.recover_after = 2;
  DegradationController ctrl(opts);
  ctrl.ReportFailure("a");
  ASSERT_EQ(ctrl.tier(), DegradationTier::kShedTracing);

  ctrl.ReportHealthy();
  ctrl.ReportFailure("b");  // resets the healthy streak, escalates again
  ctrl.ReportHealthy();
  EXPECT_EQ(ctrl.tier(), DegradationTier::kWidenCheckpoints);
}

TEST_F(DegradationLadderTest, TiersMapToHealthLevels) {
  DegradationController::Options opts;
  opts.escalate_after = 1;
  opts.component = "ladder_test";
  DegradationController ctrl(opts);
  auto& health = obs::HealthRegistry::Global();
  EXPECT_EQ(health.LevelOf("ladder_test"), obs::HealthLevel::kOk);

  ctrl.ReportFailure("x");  // tier 1
  EXPECT_EQ(ctrl.health(), obs::HealthLevel::kDegraded);
  EXPECT_EQ(health.LevelOf("ladder_test"), obs::HealthLevel::kDegraded);

  ctrl.ReportFailure("x");  // tier 2
  EXPECT_EQ(ctrl.health(), obs::HealthLevel::kDegraded);

  ctrl.ReportFailure("x");  // tier 3
  EXPECT_EQ(ctrl.health(), obs::HealthLevel::kCritical);
  EXPECT_EQ(health.LevelOf("ladder_test"), obs::HealthLevel::kCritical);
  EXPECT_EQ(health.Worst(), obs::HealthLevel::kCritical);
}

TEST_F(DegradationLadderTest, ZeroThresholdsAreClampedToOne) {
  DegradationController::Options opts;
  opts.escalate_after = 0;
  opts.recover_after = 0;
  opts.checkpoint_stretch = 0;
  DegradationController ctrl(opts);
  ctrl.ReportFailure("x");
  EXPECT_EQ(ctrl.tier(), DegradationTier::kShedTracing);
  ctrl.ReportFailure("x");
  EXPECT_EQ(ctrl.tier(), DegradationTier::kWidenCheckpoints);
  EXPECT_EQ(ctrl.checkpoint_stretch(), 1u);  // stretch clamped up from 0
  ctrl.ReportHealthy();
  EXPECT_EQ(ctrl.tier(), DegradationTier::kShedTracing);
}

}  // namespace
}  // namespace commsig
