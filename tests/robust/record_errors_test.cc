#include "robust/record_errors.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace commsig {
namespace {

using robust_internal::HandleBadRecord;

TEST(RecordErrorReasonNameTest, StableNames) {
  EXPECT_EQ(RecordErrorReasonName(RecordErrorReason::kTruncated),
            "truncated");
  EXPECT_EQ(RecordErrorReasonName(RecordErrorReason::kBadMagic), "bad_magic");
  EXPECT_EQ(RecordErrorReasonName(RecordErrorReason::kTimestampRegression),
            "timestamp_regression");
}

TEST(RecordErrorLogTest, CountsPerReasonAndTotal) {
  RecordErrorLog log;
  log.Record(RecordErrorReason::kBadField, 1, "x");
  log.Record(RecordErrorReason::kBadField, 2, "y");
  log.Record(RecordErrorReason::kZeroNode, 3, "z");
  EXPECT_EQ(log.total(), 3u);
  EXPECT_EQ(log.count(RecordErrorReason::kBadField), 2u);
  EXPECT_EQ(log.count(RecordErrorReason::kZeroNode), 1u);
  EXPECT_EQ(log.count(RecordErrorReason::kTruncated), 0u);
  ASSERT_EQ(log.entries().size(), 3u);
  EXPECT_EQ(log.entries()[1].position, 2u);
  EXPECT_EQ(log.entries()[1].detail, "y");
}

TEST(RecordErrorLogTest, RetentionCapKeepsCountersExact) {
  RecordErrorLog log(/*max_retained=*/2);
  for (uint64_t i = 0; i < 10; ++i) {
    log.Record(RecordErrorReason::kBadField, i, "d");
  }
  EXPECT_EQ(log.entries().size(), 2u);  // capped
  EXPECT_EQ(log.total(), 10u);          // counters keep counting
  EXPECT_EQ(log.count(RecordErrorReason::kBadField), 10u);
}

TEST(RecordErrorLogTest, ClearResetsEverything) {
  RecordErrorLog log;
  log.Record(RecordErrorReason::kBadMagic, 0, "");
  log.Clear();
  EXPECT_EQ(log.total(), 0u);
  EXPECT_EQ(log.count(RecordErrorReason::kBadMagic), 0u);
  EXPECT_TRUE(log.entries().empty());
}

TEST(RecordErrorLogTest, WriteCsvDumpsDeadLetters) {
  RecordErrorLog log;
  log.Record(RecordErrorReason::kNonFiniteWeight, 7, "weight nan");
  auto path = std::filesystem::temp_directory_path() /
              ("commsig_deadletter_" + std::to_string(::getpid()) + ".csv");
  ASSERT_TRUE(log.WriteCsv(path.string()).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("non_finite_weight,7,weight nan"),
            std::string::npos)
      << content.str();
  std::filesystem::remove(path);
}

TEST(HandleBadRecordTest, FailPolicyPropagatesImmediately) {
  IngestOptions opts;  // kFail
  uint64_t errors = 0;
  Status s = HandleBadRecord(opts, &errors, RecordErrorReason::kBadField, 3,
                             "boom");
  EXPECT_TRUE(s.IsCorruption());
  Status csv = HandleBadRecord(opts, &errors, RecordErrorReason::kBadField, 3,
                               "boom", /*invalid_argument_on_fail=*/true);
  EXPECT_TRUE(csv.IsInvalidArgument());
}

TEST(HandleBadRecordTest, SkipPolicyContinuesUntilBudgetExhausted) {
  IngestOptions opts;
  opts.policy = ErrorPolicy::kSkip;
  opts.max_errors = 3;
  uint64_t errors = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(HandleBadRecord(opts, &errors, RecordErrorReason::kBadField,
                                i, "d")
                    .ok());
  }
  Status s =
      HandleBadRecord(opts, &errors, RecordErrorReason::kBadField, 3, "d");
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(HandleBadRecordTest, ZeroBudgetMeansUnlimited) {
  IngestOptions opts;
  opts.policy = ErrorPolicy::kSkip;
  opts.max_errors = 0;
  uint64_t errors = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(HandleBadRecord(opts, &errors, RecordErrorReason::kBadField,
                                i, "d")
                    .ok());
  }
}

TEST(HandleBadRecordTest, QuarantineFeedsTheLog) {
  RecordErrorLog log;
  IngestOptions opts;
  opts.policy = ErrorPolicy::kQuarantine;
  opts.error_log = &log;
  uint64_t errors = 0;
  EXPECT_TRUE(HandleBadRecord(opts, &errors, RecordErrorReason::kZeroNode, 9,
                              "empty label")
                  .ok());
  EXPECT_EQ(log.total(), 1u);
  EXPECT_EQ(log.entries()[0].position, 9u);
}

TEST(HandleBadRecordTest, QuarantineWithoutLogDegradesToSkip) {
  IngestOptions opts;
  opts.policy = ErrorPolicy::kQuarantine;  // error_log left null
  uint64_t errors = 0;
  EXPECT_TRUE(
      HandleBadRecord(opts, &errors, RecordErrorReason::kZeroNode, 0, "")
          .ok());
}

TEST(GlobalErrorBudgetTest, SharedAcrossReaders) {
  // The run-wide budget (--max-total-errors) is charged across readers even
  // when each stays under its own per-file limit: two files can absorb two
  // rejections total, and the third — wherever it lands — stops the run.
  GlobalErrorBudget budget;
  budget.max_total_errors = 2;

  IngestOptions file_a;
  file_a.policy = ErrorPolicy::kSkip;
  file_a.max_errors = 0;  // per-file budget unlimited
  file_a.global_budget = &budget;
  IngestOptions file_b = file_a;

  uint64_t errors_a = 0;
  uint64_t errors_b = 0;
  EXPECT_TRUE(HandleBadRecord(file_a, &errors_a,
                              RecordErrorReason::kBadField, 1, "d")
                  .ok());
  EXPECT_TRUE(HandleBadRecord(file_b, &errors_b,
                              RecordErrorReason::kBadField, 1, "d")
                  .ok());
  EXPECT_FALSE(budget.exhausted());

  Status s = HandleBadRecord(file_b, &errors_b,
                             RecordErrorReason::kTruncated, 2, "d");
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.ToString().find("global error budget exhausted"),
            std::string::npos)
      << s.ToString();
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.total, 3u);
}

TEST(GlobalErrorBudgetTest, ZeroDisablesTheBudget) {
  GlobalErrorBudget budget;  // max_total_errors = 0
  IngestOptions opts;
  opts.policy = ErrorPolicy::kSkip;
  opts.max_errors = 0;
  opts.global_budget = &budget;
  uint64_t errors = 0;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(HandleBadRecord(opts, &errors,
                                RecordErrorReason::kBadField, i, "d")
                    .ok());
  }
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.total, 500u);
}

TEST(GlobalErrorBudgetTest, KFailStillFailsFirstWithoutCharging) {
  GlobalErrorBudget budget;
  budget.max_total_errors = 10;
  IngestOptions opts;  // policy = kFail
  opts.global_budget = &budget;
  uint64_t errors = 0;
  Status s =
      HandleBadRecord(opts, &errors, RecordErrorReason::kBadField, 0, "d");
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(budget.total, 0u);  // kFail aborts before the budget is charged
}

TEST(PoisonWindowReasonTest, HasAStableNameAndQuarantines) {
  // The supervisor's epoch quarantine dead-letters through the same sink
  // as reader rejections, under its own stable reason code.
  EXPECT_EQ(RecordErrorReasonName(RecordErrorReason::kPoisonWindow),
            "poison_window");
  RecordErrorLog log;
  log.Record(RecordErrorReason::kPoisonWindow, 400,
             "epoch [400, 600) skipped after 3 attempts");
  EXPECT_EQ(log.count(RecordErrorReason::kPoisonWindow), 1u);
  EXPECT_EQ(log.entries()[0].position, 400u);
}

}  // namespace
}  // namespace commsig
