// Checkpoint wire-format round-trips for every serializable component, plus
// adversarial decoding: every FromBytes must return Corruption — never
// crash, hang, or over-allocate — on truncated or bit-flipped bytes.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/result.h"
#include "graph/windower.h"
#include "sketch/count_min.h"
#include "sketch/fm_sketch.h"
#include "sketch/space_saving.h"
#include "sketch/streaming_signatures.h"

namespace commsig {
namespace {

// Serialized bytes with every prefix truncation and a bit flip in every
// byte, fed back through `decode`. Exercises the bounds checks; the decoder
// may legitimately accept some flipped payloads (a flipped counter value is
// still well-formed), so this asserts "no crash", not "always rejected".
template <typename Decode>
void FuzzBytes(const std::string& bytes, Decode decode) {
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::string truncated = bytes.substr(0, len);
    ByteReader in(truncated);
    decode(in);
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x20);
    ByteReader in(flipped);
    decode(in);
  }
}

TEST(ByteRoundTrip, PrimitivesAndCrc) {
  ByteWriter out;
  out.PutU8(7);
  out.PutU32(0xdeadbeef);
  out.PutU64(1ull << 60);
  out.PutDouble(-2.5);
  out.PutString("payload");
  ByteReader in(out.bytes());
  EXPECT_EQ(*in.U8(), 7u);
  EXPECT_EQ(*in.U32(), 0xdeadbeefu);
  EXPECT_EQ(*in.U64(), 1ull << 60);
  EXPECT_DOUBLE_EQ(*in.Double(), -2.5);
  EXPECT_EQ(*in.String(), "payload");
  EXPECT_TRUE(in.AtEnd());

  // CRC32 check value from the IEEE 802.3 specification.
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_NE(Crc32("123456789"), Crc32("123456788"));
}

TEST(ByteRoundTrip, ReadsPastEndAreCorruption) {
  ByteWriter out;
  out.PutU32(5);
  ByteReader in(out.bytes());
  ASSERT_TRUE(in.U32().ok());
  auto r = in.U64();
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(ByteRoundTrip, OversizedStringLengthRejected) {
  ByteWriter out;
  out.PutU64(1ull << 40);  // length prefix far past the buffer
  out.PutU32(0);
  ByteReader in(out.bytes());
  EXPECT_TRUE(in.String().status().IsCorruption());
}

TEST(CountMinRoundTrip, PreservesEstimates) {
  CountMinSketch sketch(128, 4, 77);
  for (uint64_t key = 0; key < 500; ++key) {
    sketch.Add(key, static_cast<double>(key % 7 + 1));
  }
  ByteWriter out;
  sketch.AppendTo(out);
  ByteReader in(out.bytes());
  auto restored = CountMinSketch::FromBytes(in);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(in.AtEnd());
  EXPECT_DOUBLE_EQ(restored->TotalCount(), sketch.TotalCount());
  for (uint64_t key = 0; key < 500; ++key) {
    EXPECT_DOUBLE_EQ(restored->Estimate(key), sketch.Estimate(key));
  }
}

TEST(CountMinRoundTrip, CorruptBytesRejectedNotCrashed) {
  CountMinSketch sketch(16, 2, 1);
  sketch.Add(42, 3.0);
  ByteWriter out;
  sketch.AppendTo(out);
  FuzzBytes(out.bytes(), [](ByteReader& in) {
    Result<CountMinSketch> r = CountMinSketch::FromBytes(in);
    // A flipped payload may still decode; a salvaged sketch must be usable.
    if (r.ok()) r.value().Estimate(42);
  });
  // A dimension header promising more cells than the buffer holds must be
  // rejected up front, not discovered via out-of-bounds reads.
  ByteWriter huge;
  huge.PutU64(1ull << 32);  // width
  huge.PutU64(1ull << 32);  // depth: width*depth overflows size_t math
  huge.PutU64(0);
  huge.PutDouble(0.0);
  ByteReader in(huge.bytes());
  EXPECT_TRUE(CountMinSketch::FromBytes(in).status().IsCorruption());
}

TEST(FmSketchRoundTrip, PreservesEstimate) {
  FmSketch sketch(64, 9);
  for (uint64_t item = 0; item < 1000; ++item) sketch.Add(item);
  ByteWriter out;
  sketch.AppendTo(out);
  ByteReader in(out.bytes());
  auto restored = FmSketch::FromBytes(in);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(in.AtEnd());
  EXPECT_DOUBLE_EQ(restored->Estimate(), sketch.Estimate());
}

TEST(FmSketchRoundTrip, CorruptBytesRejectedNotCrashed) {
  FmSketch sketch(8, 2);
  sketch.Add(5);
  ByteWriter out;
  sketch.AppendTo(out);
  FuzzBytes(out.bytes(), [](ByteReader& in) {
    Result<FmSketch> r = FmSketch::FromBytes(in);
    if (r.ok()) r.value().Estimate();
  });
}

TEST(SpaceSavingRoundTrip, PreservesItemsAndDeterministicBytes) {
  SpaceSaving summary(8);
  for (uint64_t key = 0; key < 40; ++key) {
    summary.Add(key % 12, static_cast<double>(key + 1));
  }
  ByteWriter out;
  summary.AppendTo(out);
  ByteReader in(out.bytes());
  auto restored = SpaceSaving::FromBytes(in);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(in.AtEnd());
  EXPECT_DOUBLE_EQ(restored->TotalWeight(), summary.TotalWeight());
  auto a = summary.Items();
  auto b = restored->Items();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_DOUBLE_EQ(a[i].count, b[i].count);
    EXPECT_DOUBLE_EQ(a[i].error, b[i].error);
  }
  // Unordered-map internals must not leak into the bytes: re-serializing
  // the restored copy gives identical bytes.
  ByteWriter again;
  restored->AppendTo(again);
  EXPECT_EQ(out.bytes(), again.bytes());
}

TEST(SpaceSavingRoundTrip, CorruptBytesRejectedNotCrashed) {
  SpaceSaving summary(4);
  summary.Add(1, 2.0);
  summary.Add(2, 1.0);
  ByteWriter out;
  summary.AppendTo(out);
  FuzzBytes(out.bytes(), [](ByteReader& in) {
    Result<SpaceSaving> r = SpaceSaving::FromBytes(in);
    if (r.ok()) r.value().Items();
  });
}

TEST(WindowerRoundTrip, PreservesConfiguration) {
  TraceWindower windower(100, 3600, 500, 10);
  ByteWriter out;
  windower.AppendTo(out);
  ByteReader in(out.bytes());
  auto restored = TraceWindower::FromBytes(in);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_nodes(), 100u);
  EXPECT_EQ(restored->window_length(), 3600u);
  EXPECT_EQ(restored->start_time(), 500u);
  EXPECT_EQ(restored->WindowOf(500 + 2 * 3600), 2u);
}

TEST(StreamingBuilderRoundTrip, RestoredBuilderContinuesIdentically) {
  StreamingSignatureBuilder::Options opts;
  opts.heavy_hitter_capacity = 16;
  opts.cm_width = 256;
  opts.cm_depth = 3;
  opts.fm_bitmaps = 16;
  std::vector<NodeId> focal = {0, 1, 2};
  StreamingSignatureBuilder reference(focal, opts);
  StreamingSignatureBuilder half(focal, opts);

  std::vector<TraceEvent> events;
  for (uint64_t i = 0; i < 2000; ++i) {
    events.push_back({static_cast<NodeId>(i % 5),
                      static_cast<NodeId>(5 + i * 7 % 40), i,
                      1.0 + static_cast<double>(i % 3)});
  }
  reference.ObserveAll(events);
  for (size_t i = 0; i < 1000; ++i) half.Observe(events[i]);

  // Snapshot mid-stream, restore, replay the rest.
  ByteWriter out;
  half.AppendTo(out);
  ByteReader in(out.bytes());
  auto restored = StreamingSignatureBuilder::FromBytes(in);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(in.AtEnd());
  EXPECT_EQ(restored->events_observed(), 1000u);
  for (size_t i = 1000; i < events.size(); ++i) {
    restored->Observe(events[i]);
  }

  EXPECT_EQ(restored->events_observed(), reference.events_observed());
  for (NodeId v : focal) {
    Signature ref_tt = reference.TopTalkers(v, 8);
    Signature got_tt = restored->TopTalkers(v, 8);
    ASSERT_EQ(ref_tt.size(), got_tt.size());
    for (size_t i = 0; i < ref_tt.size(); ++i) {
      EXPECT_EQ(ref_tt.entries()[i].node, got_tt.entries()[i].node);
      EXPECT_DOUBLE_EQ(ref_tt.entries()[i].weight,
                       got_tt.entries()[i].weight);
    }
    Signature ref_ut = reference.UnexpectedTalkers(v, 8);
    Signature got_ut = restored->UnexpectedTalkers(v, 8);
    ASSERT_EQ(ref_ut.size(), got_ut.size());
    for (size_t i = 0; i < ref_ut.size(); ++i) {
      EXPECT_EQ(ref_ut.entries()[i].node, got_ut.entries()[i].node);
    }
  }
}

TEST(StreamingBuilderRoundTrip, SerializationIsDeterministic) {
  StreamingSignatureBuilder::Options opts;
  opts.heavy_hitter_capacity = 8;
  opts.cm_width = 64;
  opts.cm_depth = 2;
  opts.fm_bitmaps = 8;
  StreamingSignatureBuilder a({0, 1}, opts);
  StreamingSignatureBuilder b({0, 1}, opts);
  for (uint64_t i = 0; i < 300; ++i) {
    TraceEvent e{static_cast<NodeId>(i % 3), static_cast<NodeId>(3 + i % 9),
                 i, 2.0};
    a.Observe(e);
    b.Observe(e);
  }
  ByteWriter wa, wb;
  a.AppendTo(wa);
  b.AppendTo(wb);
  EXPECT_EQ(wa.bytes(), wb.bytes());
}

TEST(StreamingBuilderRoundTrip, CorruptBytesRejectedNotCrashed) {
  StreamingSignatureBuilder::Options opts;
  opts.heavy_hitter_capacity = 4;
  opts.cm_width = 16;
  opts.cm_depth = 2;
  opts.fm_bitmaps = 4;
  StreamingSignatureBuilder builder({0}, opts);
  for (uint64_t i = 0; i < 50; ++i) {
    builder.Observe({0, static_cast<NodeId>(1 + i % 6), i, 1.0});
  }
  ByteWriter out;
  builder.AppendTo(out);
  FuzzBytes(out.bytes(), [](ByteReader& in) {
    Result<StreamingSignatureBuilder> r =
        StreamingSignatureBuilder::FromBytes(in);
    if (r.ok()) r.value().MemoryBytes();
  });
}

}  // namespace
}  // namespace commsig
