#include "robust/failpoints.h"

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace commsig {
namespace {

namespace fs = std::filesystem;

class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoints::Enabled()) {
      GTEST_SKIP() << "built without COMMSIG_FAILPOINTS";
    }
    FailPointRegistry::Global().Reset();
  }
  void TearDown() override { FailPointRegistry::Global().Reset(); }
};

TEST_F(FailPointTest, UnarmedSiteNeverFires) {
  EXPECT_EQ(FailPointRegistry::Global().Evaluate("nowhere"),
            FailPointKind::kOff);
  EXPECT_TRUE(failpoints::Inject("nowhere").ok());
  EXPECT_FALSE(FailPointRegistry::Global().any_armed());
}

TEST_F(FailPointTest, FiresOnConfiguredHitWindow) {
  auto& reg = FailPointRegistry::Global();
  reg.Arm("io/site", {FailPointKind::kEio, /*after=*/2, /*count=*/2});
  EXPECT_TRUE(reg.any_armed());
  EXPECT_EQ(reg.Evaluate("io/site"), FailPointKind::kOff);   // hit 1
  EXPECT_EQ(reg.Evaluate("io/site"), FailPointKind::kOff);   // hit 2
  EXPECT_EQ(reg.Evaluate("io/site"), FailPointKind::kEio);   // hit 3
  EXPECT_EQ(reg.Evaluate("io/site"), FailPointKind::kEio);   // hit 4
  EXPECT_EQ(reg.Evaluate("io/site"), FailPointKind::kOff);   // hit 5
  auto stats = reg.stats("io/site");
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_EQ(stats.fires, 2u);
}

TEST_F(FailPointTest, CountZeroFiresForever) {
  auto& reg = FailPointRegistry::Global();
  reg.Arm("io/site", {FailPointKind::kEnospc, 0, 0});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(reg.Evaluate("io/site"), FailPointKind::kEnospc);
  }
}

TEST_F(FailPointTest, DisarmStopsFiring) {
  auto& reg = FailPointRegistry::Global();
  reg.Arm("io/site", {FailPointKind::kEio, 0, 0});
  EXPECT_EQ(reg.Evaluate("io/site"), FailPointKind::kEio);
  reg.Disarm("io/site");
  EXPECT_EQ(reg.Evaluate("io/site"), FailPointKind::kOff);
  EXPECT_FALSE(reg.any_armed());
}

TEST_F(FailPointTest, ArmFromSpecParsesSitesAndModifiers) {
  auto& reg = FailPointRegistry::Global();
  ASSERT_TRUE(reg
                  .ArmFromSpec(
                      "checkpoint/write=enospc@2;stream/epoch=eio@1x2;"
                      "checkpoint/fsync=fsync_fail")
                  .ok());
  auto sites = reg.ArmedSites();
  EXPECT_EQ(sites.size(), 3u);
  // checkpoint/write=enospc@2: skips two hits, then fires once.
  EXPECT_EQ(reg.Evaluate("checkpoint/write"), FailPointKind::kOff);
  EXPECT_EQ(reg.Evaluate("checkpoint/write"), FailPointKind::kOff);
  EXPECT_EQ(reg.Evaluate("checkpoint/write"), FailPointKind::kEnospc);
  EXPECT_EQ(reg.Evaluate("checkpoint/write"), FailPointKind::kOff);
  // stream/epoch=eio@1x2: skips one, fires twice.
  EXPECT_EQ(reg.Evaluate("stream/epoch"), FailPointKind::kOff);
  EXPECT_EQ(reg.Evaluate("stream/epoch"), FailPointKind::kEio);
  EXPECT_EQ(reg.Evaluate("stream/epoch"), FailPointKind::kEio);
  EXPECT_EQ(reg.Evaluate("stream/epoch"), FailPointKind::kOff);
  // bare kind: fires on the first hit.
  EXPECT_EQ(reg.Evaluate("checkpoint/fsync"), FailPointKind::kFsyncFail);
}

TEST_F(FailPointTest, ArmFromSpecRejectsGarbage) {
  auto& reg = FailPointRegistry::Global();
  EXPECT_FALSE(reg.ArmFromSpec("nonsense").ok());
  EXPECT_FALSE(reg.ArmFromSpec("site=notakind").ok());
  EXPECT_FALSE(reg.ArmFromSpec("=eio").ok());
  EXPECT_FALSE(reg.ArmFromSpec("site=eio@notanumber").ok());
  EXPECT_FALSE(reg.any_armed());
}

TEST_F(FailPointTest, KindNamesRoundTrip) {
  for (FailPointKind kind :
       {FailPointKind::kEio, FailPointKind::kEnospc, FailPointKind::kShortWrite,
        FailPointKind::kTornRename, FailPointKind::kFsyncFail}) {
    FailPointKind parsed = FailPointKind::kOff;
    ASSERT_TRUE(ParseFailPointKind(FailPointKindName(kind), parsed))
        << FailPointKindName(kind);
    EXPECT_EQ(parsed, kind);
  }
}

TEST_F(FailPointTest, InjectMapsKindsToIoError) {
  auto& reg = FailPointRegistry::Global();
  reg.Arm("a", {FailPointKind::kEio, 0, 0});
  reg.Arm("b", {FailPointKind::kEnospc, 0, 0});
  EXPECT_TRUE(failpoints::Inject("a").IsIOError());
  EXPECT_TRUE(failpoints::Inject("b").IsIOError());
}

class FailPointIoTest : public FailPointTest {
 protected:
  void SetUp() override {
    FailPointTest::SetUp();
    if (IsSkipped()) return;
    dir_ = fs::temp_directory_path() /
           ("commsig_fp_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    FailPointTest::TearDown();
  }

  std::string ReadFile(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  fs::path dir_;
};

TEST_F(FailPointIoTest, HelpersPerformRealIoWhenUnarmed) {
  const fs::path path = dir_ / "out.bin";
  auto fd = failpoints::OpenForWrite("w/open", path.string());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  const std::string payload = "durable payload";
  ASSERT_TRUE(
      failpoints::WriteAll("w/write", *fd, payload.data(), payload.size())
          .ok());
  ASSERT_TRUE(failpoints::FsyncFd("w/fsync", *fd).ok());
  ::close(*fd);
  const fs::path final_path = dir_ / "final.bin";
  ASSERT_TRUE(failpoints::RenameFile("w/rename", path.string(),
                                     final_path.string())
                  .ok());
  ASSERT_TRUE(failpoints::FsyncDir("w/dirsync", dir_.string()).ok());
  EXPECT_EQ(ReadFile(final_path), payload);
}

TEST_F(FailPointIoTest, ShortWritePersistsOnlyAPrefix) {
  FailPointRegistry::Global().Arm("w/write",
                                  {FailPointKind::kShortWrite, 0, 1});
  const fs::path path = dir_ / "torn.bin";
  auto fd = failpoints::OpenForWrite("w/open", path.string());
  ASSERT_TRUE(fd.ok());
  const std::string payload(64, 'z');
  Status s = failpoints::WriteAll("w/write", *fd, payload.data(),
                                  payload.size());
  ::close(*fd);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_LT(fs::file_size(path), payload.size());
}

TEST_F(FailPointIoTest, TornRenameLandsTruncatedFileUnderLiveName) {
  const fs::path tmp = dir_ / "t.tmp";
  const std::string payload(100, 'q');
  std::ofstream(tmp, std::ios::binary) << payload;
  FailPointRegistry::Global().Arm("w/rename",
                                  {FailPointKind::kTornRename, 0, 1});
  const fs::path live = dir_ / "live.bin";
  // The torn rename *reports success* — the tear is only discoverable by
  // the reader's integrity check, exactly like a real post-crash torn file.
  ASSERT_TRUE(
      failpoints::RenameFile("w/rename", tmp.string(), live.string()).ok());
  ASSERT_TRUE(fs::exists(live));
  EXPECT_LT(fs::file_size(live), payload.size());
  EXPECT_FALSE(fs::exists(tmp));
}

TEST_F(FailPointIoTest, ArmedOpenFailsWithoutCreatingFile) {
  FailPointRegistry::Global().Arm("w/open", {FailPointKind::kEnospc, 0, 1});
  const fs::path path = dir_ / "never.bin";
  auto fd = failpoints::OpenForWrite("w/open", path.string());
  EXPECT_TRUE(fd.status().IsIOError());
  EXPECT_FALSE(fs::exists(path));
}

}  // namespace
}  // namespace commsig
