// StreamSupervisor recovery semantics: transactional epochs with rollback
// and retry, from-scratch rebuild, poison-window quarantine, checkpoint
// restore (including the corrupt-newest fallback) and the degradation
// ladder's tier effects — all driven deterministically through the IO
// fail-point registry.

#include "robust/supervisor.h"

#include <unistd.h>

#include <chrono>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "obs/health.h"
#include "robust/failpoints.h"

namespace commsig {
namespace {

namespace fs = std::filesystem;

constexpr NodeId kNumNodes = 20;

/// Deterministic synthetic stream: each of 8 sources talks mostly to one
/// favourite plus a rotating side channel.
std::vector<TraceEvent> MakeEvents(uint64_t n) {
  std::vector<TraceEvent> events;
  events.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const NodeId src = static_cast<NodeId>(i % 8);
    const NodeId dst = static_cast<NodeId>(
        8 + (i % 13 == 0 ? (i / 13) % (kNumNodes - 8) : src));
    events.push_back({src, dst, i, 1.0 + static_cast<double>(i % 5)});
  }
  return events;
}

std::vector<NodeId> Focal() { return {0, 1, 2, 3, 4, 5, 6, 7}; }

/// Canonical end-state comparison: the builder's serialized bytes cover
/// sketches, heavy hitters and history, so equality here is bit-identical
/// signatures.
std::string BuilderBytes(const StreamSupervisor& supervisor) {
  ByteWriter out;
  supervisor.builder()->AppendTo(out);
  return std::move(out).Take();
}

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (failpoints::Enabled()) FailPointRegistry::Global().Reset();
    obs::HealthRegistry::Global().Reset();
    dir_ = fs::temp_directory_path() /
           ("commsig_sup_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override {
    if (failpoints::Enabled()) FailPointRegistry::Global().Reset();
    obs::HealthRegistry::Global().Reset();
    fs::remove_all(dir_);
  }

  StreamSupervisor::Options BaseOptions(const std::string& checkpoint_dir) {
    StreamSupervisor::Options opts;
    opts.checkpoint_every = 200;
    opts.emit_every = 0;
    opts.checkpoint_dir = checkpoint_dir;
    opts.retry.max_attempts = 4;
    opts.retry.initial_backoff_ms = 0;  // tests must not sleep
    opts.retry.max_backoff_ms = 0;
    return opts;
  }

  /// The reference end state: one fault-free, checkpoint-free run.
  std::string ReferenceBytes(const std::vector<TraceEvent>& events) {
    StreamSupervisor reference(Focal(), BaseOptions(""));
    StreamRunReport report = reference.Run(events);
    EXPECT_FALSE(report.killed);
    EXPECT_EQ(report.events_processed, events.size());
    return BuilderBytes(reference);
  }

  fs::path dir_;
};

TEST_F(SupervisorTest, FingerprintIsOrderAndContentSensitive) {
  auto events = MakeEvents(50);
  const uint64_t fp = StreamSupervisor::FingerprintEvents(events);
  EXPECT_EQ(StreamSupervisor::FingerprintEvents(events), fp);
  auto edited = events;
  edited[10].weight += 1.0;
  EXPECT_NE(StreamSupervisor::FingerprintEvents(edited), fp);
  auto swapped = events;
  std::swap(swapped[0], swapped[1]);
  EXPECT_NE(StreamSupervisor::FingerprintEvents(swapped), fp);
}

TEST_F(SupervisorTest, FaultFreeRunProcessesEverything) {
  auto events = MakeEvents(1000);
  StreamSupervisor supervisor(Focal(), BaseOptions(dir_.string()));
  StreamRunReport report = supervisor.Run(events);
  EXPECT_FALSE(report.killed);
  EXPECT_EQ(report.start_event, 0u);
  EXPECT_EQ(report.events_processed, 1000u);
  EXPECT_EQ(report.final_position, 1000u);
  EXPECT_EQ(report.epoch_retries, 0u);
  EXPECT_EQ(report.epochs_quarantined, 0u);
  // 200..1000 in-loop plus the end-of-run save (which rewrites seq 1000).
  EXPECT_EQ(report.checkpoints_saved, 6u);
  EXPECT_EQ(report.final_tier, DegradationTier::kOk);
  EXPECT_EQ(BuilderBytes(supervisor), ReferenceBytes(events));
}

TEST_F(SupervisorTest, ReplayRatePacesAgainstTheStreamTimestamps) {
  // 300 events spanning 300 trace-time units at 3000x => ~100 ms of wall
  // clock. The schedule is absolute, so total elapsed time is what the
  // rate implies regardless of per-event processing cost.
  auto events = MakeEvents(300);
  StreamSupervisor::Options opts = BaseOptions("");
  opts.replay_rate = 3000.0;
  StreamSupervisor supervisor(Focal(), opts);
  const auto start = std::chrono::steady_clock::now();
  StreamRunReport report = supervisor.Run(events);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(report.events_processed, events.size());
  // Generous lower bound (the schedule implies ~100 ms) to stay robust on
  // loaded CI machines; no upper bound — pacing never blocks completion.
  EXPECT_GE(elapsed.count(), 60);
  // Pacing must not change the computed state.
  EXPECT_EQ(BuilderBytes(supervisor), ReferenceBytes(events));
}

TEST_F(SupervisorTest, KillAndResumeConvergesToFaultFreeState) {
  auto events = MakeEvents(1000);
  auto opts = BaseOptions(dir_.string());
  opts.kill_after = 450;
  StreamSupervisor first(Focal(), std::move(opts));
  StreamRunReport killed = first.Run(events);
  EXPECT_TRUE(killed.killed);
  EXPECT_EQ(killed.final_position, 450u);

  StreamSupervisor second(Focal(), BaseOptions(dir_.string()));
  StreamRunReport resumed = second.Run(events);
  EXPECT_FALSE(resumed.killed);
  EXPECT_TRUE(resumed.restored_from_checkpoint);
  EXPECT_FALSE(resumed.restored_from_fallback);
  EXPECT_EQ(resumed.start_event, 400u);  // newest checkpoint before the kill
  EXPECT_EQ(resumed.final_position, 1000u);
  EXPECT_EQ(BuilderBytes(second), ReferenceBytes(events));
}

TEST_F(SupervisorTest, StaleCheckpointTriggersFreshStart) {
  auto events = MakeEvents(600);
  auto opts = BaseOptions(dir_.string());
  opts.kill_after = 300;
  StreamSupervisor first(Focal(), std::move(opts));
  (void)first.Run(events);

  // Same directory, different input: the fingerprint must reject the
  // checkpoint instead of resuming 300 events into the wrong stream.
  auto other = MakeEvents(600);
  other[0].weight = 99.0;
  StreamSupervisor second(Focal(), BaseOptions(dir_.string()));
  StreamRunReport report = second.Run(other);
  EXPECT_FALSE(report.restored_from_checkpoint);
  EXPECT_EQ(report.start_event, 0u);
  EXPECT_EQ(report.events_processed, 600u);
}

// Satellite: restore-under-corruption. The newest checkpoint generation is
// truncated (and, separately, bit-flipped); the supervisor must fall back
// to the previous generation and keep streaming to the correct end state.
TEST_F(SupervisorTest, TruncatedNewestCheckpointFallsBackToPreviousGen) {
  auto events = MakeEvents(1000);
  auto opts = BaseOptions(dir_.string());
  opts.kill_after = 450;  // leaves checkpoints at 200 and 400
  StreamSupervisor first(Focal(), std::move(opts));
  ASSERT_TRUE(first.Run(events).killed);

  fs::path newest;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (newest.empty() || entry.path().filename() > newest.filename()) {
      newest = entry.path();
    }
  }
  ASSERT_FALSE(newest.empty());
  fs::resize_file(newest, fs::file_size(newest) / 2);

  StreamSupervisor second(Focal(), BaseOptions(dir_.string()));
  StreamRunReport report = second.Run(events);
  EXPECT_TRUE(report.restored_from_checkpoint);
  EXPECT_TRUE(report.restored_from_fallback);
  EXPECT_EQ(report.start_event, 200u);  // previous generation
  EXPECT_FALSE(report.killed);
  EXPECT_EQ(report.final_position, 1000u);
  EXPECT_EQ(BuilderBytes(second), ReferenceBytes(events));
}

TEST_F(SupervisorTest, BitFlippedNewestCheckpointFallsBackToPreviousGen) {
  auto events = MakeEvents(1000);
  auto opts = BaseOptions(dir_.string());
  opts.kill_after = 450;
  StreamSupervisor first(Focal(), std::move(opts));
  ASSERT_TRUE(first.Run(events).killed);

  fs::path newest;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (newest.empty() || entry.path().filename() > newest.filename()) {
      newest = entry.path();
    }
  }
  ASSERT_FALSE(newest.empty());
  {
    std::fstream f(newest, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(40);
    char byte = 0;
    ASSERT_TRUE(f.read(&byte, 1));
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(40);
    ASSERT_TRUE(f.write(&byte, 1));
  }

  StreamSupervisor second(Focal(), BaseOptions(dir_.string()));
  StreamRunReport report = second.Run(events);
  EXPECT_TRUE(report.restored_from_fallback);
  EXPECT_EQ(report.start_event, 200u);
  EXPECT_EQ(BuilderBytes(second), ReferenceBytes(events));
}

class SupervisorFaultTest : public SupervisorTest {
 protected:
  void SetUp() override {
    SupervisorTest::SetUp();
    if (!failpoints::Enabled()) {
      GTEST_SKIP() << "built without COMMSIG_FAILPOINTS";
    }
  }
};

TEST_F(SupervisorFaultTest, TransientEpochFaultIsRolledBackAndRetried) {
  auto events = MakeEvents(1000);
  ASSERT_TRUE(
      FailPointRegistry::Global().ArmFromSpec("stream/epoch=eio@1x2").ok());
  StreamSupervisor supervisor(Focal(), BaseOptions(dir_.string()));
  StreamRunReport report = supervisor.Run(events);
  EXPECT_FALSE(report.killed);
  EXPECT_EQ(report.epoch_retries, 2u);
  EXPECT_EQ(report.epochs_rebuilt, 0u);
  EXPECT_EQ(report.epochs_quarantined, 0u);
  EXPECT_EQ(report.events_processed, 1000u);
  FailPointRegistry::Global().Reset();
  EXPECT_EQ(BuilderBytes(supervisor), ReferenceBytes(events));
}

TEST_F(SupervisorFaultTest, PersistentEpochFaultRecoversViaScratchRebuild) {
  auto events = MakeEvents(600);
  // Every incremental attempt fails (x0 = fire forever); the rebuild path
  // (its own fail-point site) stays healthy, so every epoch must recover
  // via scratch replay.
  ASSERT_TRUE(
      FailPointRegistry::Global().ArmFromSpec("stream/epoch=eiox0").ok());
  auto opts = BaseOptions(dir_.string());
  opts.max_epoch_attempts = 2;
  StreamSupervisor supervisor(Focal(), std::move(opts));
  StreamRunReport report = supervisor.Run(events);
  EXPECT_FALSE(report.killed);
  EXPECT_EQ(report.epochs, 3u);
  EXPECT_EQ(report.epoch_retries, 6u);   // 2 failed attempts per epoch
  EXPECT_EQ(report.epochs_rebuilt, 3u);  // every epoch rebuilt from scratch
  EXPECT_EQ(report.epochs_quarantined, 0u);
  EXPECT_EQ(report.events_processed, 600u);
  FailPointRegistry::Global().Reset();
  EXPECT_EQ(BuilderBytes(supervisor), ReferenceBytes(events));
}

TEST_F(SupervisorFaultTest, PoisonEpochIsQuarantinedWithDeadLetter) {
  auto events = MakeEvents(500);
  // Both the incremental path and the scratch rebuild fail for the first
  // epoch only: it is poison and must be skipped, not retried forever.
  ASSERT_TRUE(FailPointRegistry::Global()
                  .ArmFromSpec("stream/epoch=eio@0x2;stream/rebuild=eio@0x1")
                  .ok());
  RecordErrorLog dead_letters;
  auto opts = BaseOptions(dir_.string());
  opts.max_epoch_attempts = 2;
  opts.dead_letters = &dead_letters;
  StreamSupervisor supervisor(Focal(), std::move(opts));
  StreamRunReport report = supervisor.Run(events);

  EXPECT_FALSE(report.killed);
  EXPECT_EQ(report.epochs_quarantined, 1u);
  EXPECT_EQ(report.events_quarantined, 200u);
  EXPECT_EQ(report.events_processed, 300u);
  EXPECT_EQ(report.final_position, 500u);  // the stream kept going

  ASSERT_EQ(dead_letters.total(), 1u);
  EXPECT_EQ(dead_letters.entries()[0].reason,
            RecordErrorReason::kPoisonWindow);
  EXPECT_EQ(dead_letters.entries()[0].position, 0u);
  EXPECT_NE(dead_letters.entries()[0].detail.find("epoch [0, 200)"),
            std::string::npos)
      << dead_letters.entries()[0].detail;
}

TEST_F(SupervisorFaultTest, CheckpointSaveFailureIsRetriedThroughPolicy) {
  auto events = MakeEvents(600);
  // First two fsyncs fail; the retry policy must absorb both and still
  // land every checkpoint.
  ASSERT_TRUE(FailPointRegistry::Global()
                  .ArmFromSpec("checkpoint/fsync=fsync_fail@0x2")
                  .ok());
  StreamSupervisor supervisor(Focal(), BaseOptions(dir_.string()));
  StreamRunReport report = supervisor.Run(events);
  EXPECT_EQ(report.checkpoints_saved, 4u);  // 200, 400, 600 + end-of-run
  EXPECT_EQ(report.checkpoint_save_failures, 0u);
  EXPECT_GE(report.io_retries, 2u);
  FailPointRegistry::Global().Reset();
  EXPECT_EQ(BuilderBytes(supervisor), ReferenceBytes(events));
}

TEST_F(SupervisorFaultTest, ExhaustedSaveRetriesDegradeTheTier) {
  auto events = MakeEvents(1000);
  // Every checkpoint save fails permanently: the stream must still finish,
  // with the degradation ladder escalating instead of the run dying.
  ASSERT_TRUE(
      FailPointRegistry::Global().ArmFromSpec("checkpoint/open=eiox0").ok());
  auto opts = BaseOptions(dir_.string());
  opts.retry.max_attempts = 2;
  opts.degrade.escalate_after = 1;
  StreamSupervisor supervisor(Focal(), std::move(opts));
  StreamRunReport report = supervisor.Run(events);
  EXPECT_FALSE(report.killed);
  EXPECT_EQ(report.events_processed, 1000u);
  EXPECT_EQ(report.checkpoints_saved, 0u);
  EXPECT_GE(report.checkpoint_save_failures, 3u);
  EXPECT_EQ(report.final_tier, DegradationTier::kSketchOnly);
  EXPECT_EQ(obs::HealthRegistry::Global().LevelOf("stream"),
            obs::HealthLevel::kCritical);
}

TEST_F(SupervisorFaultTest, WidenedCadenceCheckpointsLessOften) {
  auto events = MakeEvents(1200);
  ASSERT_TRUE(
      FailPointRegistry::Global().ArmFromSpec("checkpoint/open=eio@0x2").ok());
  auto opts = BaseOptions(dir_.string());
  opts.retry.max_attempts = 1;     // each armed save fails once, no retry
  opts.degrade.escalate_after = 1;  // escalate per failure
  opts.degrade.checkpoint_stretch = 3;
  StreamSupervisor supervisor(Focal(), std::move(opts));
  StreamRunReport report = supervisor.Run(events);
  // Saves at 200 and 400 fail and push the tier to widen_checkpoints; the
  // cadence becomes 600, so only 600, 1200 and the end-of-run save land.
  EXPECT_EQ(report.checkpoint_save_failures, 2u);
  EXPECT_EQ(report.checkpoints_saved, 3u);
  EXPECT_EQ(report.final_tier, DegradationTier::kWidenCheckpoints);
  EXPECT_EQ(report.events_processed, 1200u);
}

TEST_F(SupervisorFaultTest, TelemetryFlushRunsUnderRetryPolicy) {
  auto events = MakeEvents(400);
  ASSERT_TRUE(FailPointRegistry::Global()
                  .ArmFromSpec("test/telemetry=enospc@0x1")
                  .ok());
  auto opts = BaseOptions(dir_.string());
  uint64_t flushes = 0;
  opts.flush_telemetry = [&flushes]() {
    ++flushes;
    return failpoints::Inject("test/telemetry");
  };
  StreamSupervisor supervisor(Focal(), std::move(opts));
  StreamRunReport report = supervisor.Run(events);
  EXPECT_FALSE(report.killed);
  // Two cadences, one injected failure absorbed by a retry.
  EXPECT_EQ(flushes, 3u);
  EXPECT_GE(report.io_retries, 1u);
}

}  // namespace
}  // namespace commsig
