#include "ingest/pipeline.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/netflow.h"
#include "data/trace_io.h"
#include "graph/graph_io.h"
#include "graph/windower.h"

namespace commsig::ingest {
namespace {

// ---------------------------------------------------------------------------
// Golden-hash fingerprints: FNV-1a over every observable output of a read —
// events/graphs/signatures, the interner's id assignment, and the error log.
// Serial and pipelined reads must produce the same hash bit for bit.
// ---------------------------------------------------------------------------

class Fnv {
 public:
  void Mix(const void* data, size_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ull;
    }
  }
  void MixU64(uint64_t v) { Mix(&v, sizeof(v)); }
  void MixDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    MixU64(bits);
  }
  void MixString(std::string_view s) {
    MixU64(s.size());
    Mix(s.data(), s.size());
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ull;
};

uint64_t FingerprintInterner(const Interner& interner) {
  Fnv f;
  f.MixU64(interner.size());
  for (NodeId id = 0; id < interner.size(); ++id) {
    f.MixString(interner.LabelOf(id));
  }
  return f.value();
}

uint64_t FingerprintEvents(const std::vector<TraceEvent>& events,
                           const Interner& interner) {
  Fnv f;
  f.MixU64(events.size());
  for (const TraceEvent& e : events) {
    f.MixU64(e.src);
    f.MixU64(e.dst);
    f.MixU64(e.time);
    f.MixDouble(e.weight);
  }
  f.MixU64(FingerprintInterner(interner));
  return f.value();
}

uint64_t FingerprintGraph(const CommGraph& g) {
  Fnv f;
  f.MixU64(g.NumNodes());
  f.MixU64(g.NumEdges());
  f.MixDouble(g.TotalWeight());
  f.MixU64(g.bipartite().left_size);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    f.MixU64(g.OutRowDigest(v));
    f.MixU64(g.InRowDigest(v));
    f.MixDouble(g.OutWeight(v));
    f.MixDouble(g.InWeight(v));
  }
  return f.value();
}

uint64_t FingerprintSignatures(const SignatureSet& set,
                               const Interner& interner) {
  Fnv f;
  f.MixU64(set.size());
  for (size_t i = 0; i < set.size(); ++i) {
    f.MixU64(set.owners[i]);
    const Signature& sig = set.signatures[i];
    f.MixU64(sig.size());
    for (size_t j = 0; j < sig.size(); ++j) {
      f.MixU64(sig.entries()[j].node);
      f.MixDouble(sig.entries()[j].weight);
    }
  }
  f.MixU64(FingerprintInterner(interner));
  return f.value();
}

uint64_t FingerprintErrorLog(const RecordErrorLog& log) {
  Fnv f;
  f.MixU64(log.total());
  f.MixU64(log.entries().size());
  for (const RecordError& e : log.entries()) {
    f.MixU64(static_cast<uint64_t>(e.reason));
    f.MixU64(e.position);
    f.MixString(e.detail);
  }
  return f.value();
}

// ---------------------------------------------------------------------------
// Fixture: corpus files live in a per-test temp path.
// ---------------------------------------------------------------------------

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("commsig_pipeline_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  void TearDown() override { std::filesystem::remove(path_); }

  void WriteFile(const std::string& contents) {
    std::ofstream out(path_, std::ios::binary);
    out << contents;
    ASSERT_TRUE(out.good());
  }

  std::string PathStr() const { return path_.string(); }

  std::filesystem::path path_;
};

/// A trace corpus with heavy label reuse (exercises chunk-level dedup),
/// fractional weights, and times that stride across window boundaries.
std::string CleanTraceCorpus(int rows) {
  std::string out = "# trace corpus\n";
  for (int i = 0; i < rows; ++i) {
    out += "host";
    out += std::to_string(i % 97);
    out += ",svc";
    out += std::to_string(i % 31);
    out += ",";
    out += std::to_string(1000 + i / 3);
    out += ",";
    out += std::to_string(1 + (i % 7));
    out += ".25\n";
  }
  return out;
}

std::string CorruptTraceCorpus() {
  std::string out;
  int t = 500;
  for (int i = 0; i < 200; ++i) {
    out += "a";
    out += std::to_string(i % 11);
    out += ",b";
    out += std::to_string(i % 5);
    out += ",";
    out += std::to_string(t++);
    out += ",2.5\n";
    switch (i % 5) {
      case 0:
        out += "only,three,fields\n";  // wrong field count
        break;
      case 1:
        out += "x,y,notatime,1\n";  // bad integer
        break;
      case 2:
        out += ",y,";
        out += std::to_string(t);
        out += ",1\n";  // empty label
        break;
      case 3:
        out += "x,y,";
        out += std::to_string(t);
        out += ",-3\n";  // non-positive weight
        break;
      default:
        break;  // clean row only
    }
  }
  return out;
}

const int kWorkerCounts[] = {1, 2, 8};

// ---------------------------------------------------------------------------
// Trace CSV.
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, TraceCleanMatchesSerialAtEveryWorkerCount) {
  WriteFile(CleanTraceCorpus(5000));

  Interner serial_interner;
  auto serial = ReadTraceCsv(PathStr(), serial_interner);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  const uint64_t golden = FingerprintEvents(*serial, serial_interner);

  for (int workers : kWorkerCounts) {
    for (size_t chunk_bytes : {size_t{64}, size_t{4096}, size_t{1 << 20}}) {
      Interner interner;
      PipelineOptions options;
      options.parse_workers = workers;
      options.chunk_bytes = chunk_bytes;
      options.queue_capacity = 2;
      PipelineStats stats;
      auto got = ReadTraceEventsPipelined(PathStr(), PipelineFormat::kTraceCsv,
                                          interner, options, &stats);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(FingerprintEvents(*got, interner), golden)
          << "workers=" << workers << " chunk=" << chunk_bytes;
      EXPECT_EQ(*got, *serial);
      EXPECT_GT(stats.chunks_framed, 0u);
      EXPECT_EQ(stats.records_parsed, got->size());
    }
  }
}

TEST_F(PipelineTest, TraceQuarantineLogMatchesSerial) {
  WriteFile(CorruptTraceCorpus());

  IngestOptions ingest;
  ingest.policy = ErrorPolicy::kQuarantine;
  RecordErrorLog serial_log;
  ingest.error_log = &serial_log;

  Interner serial_interner;
  auto serial = ReadTraceCsv(PathStr(), serial_interner, ingest);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_GT(serial_log.total(), 0u);
  const uint64_t golden_events = FingerprintEvents(*serial, serial_interner);
  const uint64_t golden_log = FingerprintErrorLog(serial_log);

  for (int workers : kWorkerCounts) {
    Interner interner;
    RecordErrorLog log;
    PipelineOptions options;
    options.parse_workers = workers;
    options.chunk_bytes = 256;  // many chunks, rejects split across batches
    options.ingest.policy = ErrorPolicy::kQuarantine;
    options.ingest.error_log = &log;
    auto got = ReadTraceEventsPipelined(PathStr(), PipelineFormat::kTraceCsv,
                                        interner, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(FingerprintEvents(*got, interner), golden_events);
    EXPECT_EQ(FingerprintErrorLog(log), golden_log) << "workers=" << workers;
  }
}

TEST_F(PipelineTest, TraceFailPolicyReproducesSerialStatus) {
  WriteFile("a,b,10,1\nbroken row\nc,d,11,1\n");

  Interner serial_interner;
  auto serial = ReadTraceCsv(PathStr(), serial_interner);
  ASSERT_FALSE(serial.ok());

  for (int workers : kWorkerCounts) {
    Interner interner;
    PipelineOptions options;
    options.parse_workers = workers;
    auto got = ReadTraceEventsPipelined(PathStr(), PipelineFormat::kTraceCsv,
                                        interner, options);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().ToString(), serial.status().ToString());
    // Interning stops at the failure point, exactly like the serial reader.
    EXPECT_EQ(FingerprintInterner(interner),
              FingerprintInterner(serial_interner));
  }
}

TEST_F(PipelineTest, TraceErrorBudgetExhaustionMatchesSerial) {
  WriteFile(CorruptTraceCorpus());

  IngestOptions ingest;
  ingest.policy = ErrorPolicy::kSkip;
  ingest.max_errors = 10;
  Interner serial_interner;
  auto serial = ReadTraceCsv(PathStr(), serial_interner, ingest);
  ASSERT_FALSE(serial.ok());

  for (int workers : kWorkerCounts) {
    Interner interner;
    PipelineOptions options;
    options.parse_workers = workers;
    options.chunk_bytes = 128;
    options.ingest.policy = ErrorPolicy::kSkip;
    options.ingest.max_errors = 10;
    auto got = ReadTraceEventsPipelined(PathStr(), PipelineFormat::kTraceCsv,
                                        interner, options);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().ToString(), serial.status().ToString());
    EXPECT_EQ(FingerprintInterner(interner),
              FingerprintInterner(serial_interner));
  }
}

TEST_F(PipelineTest, TraceMonotonicRejectionsMatchSerial) {
  std::string corpus;
  int t = 100;
  for (int i = 0; i < 300; ++i) {
    corpus += "n";
    corpus += std::to_string(i % 13);
    corpus += ",m";
    corpus += std::to_string(i % 7);
    corpus += ",";
    corpus += std::to_string(t);
    corpus += ",1\n";
    t += (i % 9 == 4) ? -3 : 2;  // periodic regressions
  }
  WriteFile(corpus);

  IngestOptions ingest;
  ingest.policy = ErrorPolicy::kQuarantine;
  ingest.require_monotonic_time = true;
  RecordErrorLog serial_log;
  ingest.error_log = &serial_log;
  Interner serial_interner;
  auto serial = ReadTraceCsv(PathStr(), serial_interner, ingest);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_GT(serial_log.total(), 0u);

  for (int workers : kWorkerCounts) {
    Interner interner;
    RecordErrorLog log;
    PipelineOptions options;
    options.parse_workers = workers;
    options.chunk_bytes = 200;
    options.ingest.policy = ErrorPolicy::kQuarantine;
    options.ingest.require_monotonic_time = true;
    options.ingest.error_log = &log;
    auto got = ReadTraceEventsPipelined(PathStr(), PipelineFormat::kTraceCsv,
                                        interner, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(FingerprintEvents(*got, interner),
              FingerprintEvents(*serial, serial_interner));
    EXPECT_EQ(FingerprintErrorLog(log), FingerprintErrorLog(serial_log));
  }
}

TEST_F(PipelineTest, MissingFileReproducesSerialStatus) {
  Interner serial_interner;
  auto serial = ReadTraceCsv("/nonexistent/trace.csv", serial_interner);
  ASSERT_FALSE(serial.ok());

  Interner interner;
  auto got = ReadTraceEventsPipelined(
      "/nonexistent/trace.csv", PipelineFormat::kTraceCsv, interner, {});
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().ToString(), serial.status().ToString());
}

// ---------------------------------------------------------------------------
// Edge-list and signature-set CSV.
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, EdgeListGraphMatchesSerialAtEveryWorkerCount) {
  std::string corpus;
  for (int i = 0; i < 2000; ++i) {
    // Repeated pairs: aggregation order must match the serial reader's.
    corpus += "u";
    corpus += std::to_string(i % 19);
    corpus += ",v";
    corpus += std::to_string(i % 23);
    corpus += ",";
    corpus += std::to_string(1 + i % 5);
    corpus += ".5\n";
  }
  WriteFile(corpus);

  Interner serial_interner;
  auto serial = ReadEdgeListCsv(PathStr(), serial_interner, /*left=*/19);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  const uint64_t golden = FingerprintGraph(*serial);

  for (int workers : kWorkerCounts) {
    Interner interner;
    PipelineOptions options;
    options.parse_workers = workers;
    options.chunk_bytes = 512;
    auto got = ReadEdgeListPipelined(PathStr(), interner, /*left=*/19,
                                     options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(FingerprintGraph(*got), golden) << "workers=" << workers;
    EXPECT_EQ(FingerprintInterner(interner),
              FingerprintInterner(serial_interner));
  }
}

TEST_F(PipelineTest, SignatureSetMatchesSerialIncludingEmptyMarkers) {
  std::string corpus;
  corpus += "alice,bob,3.5\n";
  corpus += "alice,carol,1.25\n";
  corpus += "lonely,,0\n";  // empty-signature marker row
  for (int i = 0; i < 500; ++i) {
    corpus += "owner";
    corpus += std::to_string(i % 17);
    corpus += ",peer";
    corpus += std::to_string(i % 41);
    corpus += ",";
    corpus += std::to_string(1 + i % 3);
    corpus += "\n";
  }
  corpus += "alice,dave,9\n";  // owner continues after other owners
  WriteFile(corpus);

  Interner serial_interner;
  auto serial = ReadSignatureSetCsv(PathStr(), serial_interner);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  const uint64_t golden = FingerprintSignatures(*serial, serial_interner);

  for (int workers : kWorkerCounts) {
    Interner interner;
    PipelineOptions options;
    options.parse_workers = workers;
    options.chunk_bytes = 256;
    auto got = ReadSignatureSetPipelined(PathStr(), interner, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(FingerprintSignatures(*got, interner), golden)
        << "workers=" << workers;
  }
}

// ---------------------------------------------------------------------------
// NetFlow v5.
// ---------------------------------------------------------------------------

std::vector<NetflowV5Record> MakeFlows(int n) {
  std::vector<NetflowV5Record> records;
  for (int i = 0; i < n; ++i) {
    NetflowV5Record r;
    r.src_addr = 0x0A000000u + static_cast<uint32_t>(i % 53);
    r.dst_addr = 0xC0A80000u + static_cast<uint32_t>(i % 29);
    r.packets = 10 + static_cast<uint32_t>(i % 4);
    r.octets = 4000 + static_cast<uint32_t>(i);
    r.unix_secs = 1000 + static_cast<uint32_t>(i / 25);
    r.src_port = 40000;
    r.dst_port = 443;
    r.protocol = (i % 3 == 0) ? 17 : 6;
    records.push_back(r);
  }
  return records;
}

TEST_F(PipelineTest, NetflowCleanMatchesSerialAtEveryWorkerCount) {
  ASSERT_TRUE(WriteNetflowV5File(MakeFlows(2000), PathStr()).ok());

  NetflowReadOptions netflow;
  netflow.weighting = NetflowWeighting::kOctets;

  Interner serial_interner;
  auto raw = ReadNetflowV5File(PathStr());
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  std::vector<TraceEvent> serial =
      NetflowToEvents(*raw, serial_interner, netflow);
  const uint64_t golden = FingerprintEvents(serial, serial_interner);

  for (int workers : kWorkerCounts) {
    for (size_t chunk_bytes : {size_t{64}, size_t{8192}}) {
      Interner interner;
      PipelineOptions options;
      options.parse_workers = workers;
      options.chunk_bytes = chunk_bytes;
      options.netflow = netflow;
      auto got = ReadTraceEventsPipelined(
          PathStr(), PipelineFormat::kNetflowV5, interner, options);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(FingerprintEvents(*got, interner), golden)
          << "workers=" << workers << " chunk=" << chunk_bytes;
    }
  }
}

TEST_F(PipelineTest, NetflowCorruptStreamMatchesSerialQuarantine) {
  // Valid packets with garbage wedged between them and a truncated tail.
  std::filesystem::path clean = path_;
  clean += ".clean";
  ASSERT_TRUE(WriteNetflowV5File(MakeFlows(500), clean.string()).ok());
  std::ifstream in(clean, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::filesystem::remove(clean);
  // Corrupt a header version mid-stream, splice junk, truncate the tail.
  bytes[24 + 48 * 30] ^= 0x40;  // second packet's version bytes
  bytes.insert(bytes.size() / 2, "GARBAGEGARBAGE");
  bytes.resize(bytes.size() - 20);
  WriteFile(bytes);

  IngestOptions ingest;
  ingest.policy = ErrorPolicy::kQuarantine;
  RecordErrorLog serial_log;
  ingest.error_log = &serial_log;
  Interner serial_interner;
  auto raw = ReadNetflowV5File(PathStr(), ingest);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  ASSERT_GT(serial_log.total(), 0u);
  std::vector<TraceEvent> serial = NetflowToEvents(*raw, serial_interner);
  const uint64_t golden_events = FingerprintEvents(serial, serial_interner);
  const uint64_t golden_log = FingerprintErrorLog(serial_log);

  for (int workers : kWorkerCounts) {
    for (size_t chunk_bytes : {size_t{64}, size_t{4096}}) {
      Interner interner;
      RecordErrorLog log;
      PipelineOptions options;
      options.parse_workers = workers;
      options.chunk_bytes = chunk_bytes;
      options.ingest.policy = ErrorPolicy::kQuarantine;
      options.ingest.error_log = &log;
      auto got = ReadTraceEventsPipelined(
          PathStr(), PipelineFormat::kNetflowV5, interner, options);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(FingerprintEvents(*got, interner), golden_events)
          << "workers=" << workers << " chunk=" << chunk_bytes;
      EXPECT_EQ(FingerprintErrorLog(log), golden_log)
          << "workers=" << workers << " chunk=" << chunk_bytes;
    }
  }
}

TEST_F(PipelineTest, NetflowMonotonicHeaderRejectionsMatchSerial) {
  std::vector<NetflowV5Record> flows = MakeFlows(300);
  // Force export-time regressions between packets (25 records per time
  // step, 30 per packet -> some packets regress).
  for (size_t i = 100; i < 150; ++i) flows[i].unix_secs = 900;
  WriteFile("");  // placeholder so TearDown removes the path
  ASSERT_TRUE(WriteNetflowV5File(flows, PathStr()).ok());

  IngestOptions ingest;
  ingest.policy = ErrorPolicy::kQuarantine;
  ingest.require_monotonic_time = true;
  RecordErrorLog serial_log;
  ingest.error_log = &serial_log;
  Interner serial_interner;
  auto raw = ReadNetflowV5File(PathStr(), ingest);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  ASSERT_GT(serial_log.total(), 0u);
  std::vector<TraceEvent> serial = NetflowToEvents(*raw, serial_interner);

  for (int workers : kWorkerCounts) {
    Interner interner;
    RecordErrorLog log;
    PipelineOptions options;
    options.parse_workers = workers;
    options.chunk_bytes = 1024;
    options.ingest.policy = ErrorPolicy::kQuarantine;
    options.ingest.require_monotonic_time = true;
    options.ingest.error_log = &log;
    auto got = ReadTraceEventsPipelined(
        PathStr(), PipelineFormat::kNetflowV5, interner, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(FingerprintEvents(*got, interner),
              FingerprintEvents(serial, serial_interner));
    EXPECT_EQ(FingerprintErrorLog(log), FingerprintErrorLog(serial_log));
  }
}

// ---------------------------------------------------------------------------
// Sharded windowing.
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, WindowedReadMatchesSerialSplitAtEveryShardCount) {
  WriteFile(CleanTraceCorpus(6000));

  Interner serial_interner;
  auto serial = ReadTraceCsv(PathStr(), serial_interner);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  TraceWindower windower(serial_interner.size(), /*window_length=*/100,
                         /*start_time=*/1000);
  std::vector<CommGraph> golden = windower.Split(*serial);
  ASSERT_GT(golden.size(), 1u);

  for (int workers : {1, 2}) {
    for (size_t shards : {size_t{1}, size_t{3}, size_t{8}}) {
      Interner interner;
      PipelineOptions options;
      options.parse_workers = workers;
      options.chunk_bytes = 4096;
      WindowedReadOptions window_options;
      window_options.window_length = 100;
      window_options.start_time = 1000;
      window_options.shards = shards;
      auto got = ReadWindowsPipelined(PathStr(), PipelineFormat::kTraceCsv,
                                      interner, window_options, options);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(got->size(), golden.size())
          << "workers=" << workers << " shards=" << shards;
      for (size_t w = 0; w < golden.size(); ++w) {
        EXPECT_EQ(FingerprintGraph((*got)[w]), FingerprintGraph(golden[w]))
            << "window=" << w << " workers=" << workers
            << " shards=" << shards;
      }
    }
  }
}

TEST_F(PipelineTest, WindowedReadSkipsEventsBeforeStartTime) {
  WriteFile("a,b,5,1\nc,d,50,2\ne,f,55,3\n");

  Interner serial_interner;
  auto serial = ReadTraceCsv(PathStr(), serial_interner);
  ASSERT_TRUE(serial.ok());
  TraceWindower windower(serial_interner.size(), 10, 40);
  std::vector<CommGraph> golden = windower.Split(*serial);

  Interner interner;
  WindowedReadOptions window_options;
  window_options.window_length = 10;
  window_options.start_time = 40;
  window_options.shards = 2;
  auto got = ReadWindowsPipelined(PathStr(), PipelineFormat::kTraceCsv,
                                  interner, window_options, {});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), golden.size());
  for (size_t w = 0; w < golden.size(); ++w) {
    EXPECT_EQ(FingerprintGraph((*got)[w]), FingerprintGraph(golden[w]));
  }
}

// ---------------------------------------------------------------------------
// Back-pressure policies.
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, ShedModeCompletesAndAccountsChunks) {
  WriteFile(CleanTraceCorpus(4000));

  Interner interner;
  PipelineOptions options;
  options.parse_workers = 2;
  options.chunk_bytes = 128;
  options.queue_capacity = 1;
  options.backpressure = BackpressurePolicy::kShed;
  PipelineStats stats;
  auto got = ReadTraceEventsPipelined(PathStr(), PipelineFormat::kTraceCsv,
                                      interner, options, &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // Shedding may or may not trigger depending on scheduling, but every
  // framed chunk is either delivered or counted as shed, never lost.
  EXPECT_GT(stats.chunks_framed + stats.chunks_shed, 0u);
  EXPECT_EQ(stats.batches_merged, stats.chunks_framed);
  EXPECT_EQ(stats.records_parsed, got->size());
}

}  // namespace
}  // namespace commsig::ingest
