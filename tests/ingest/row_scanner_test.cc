#include "ingest/row_scanner.h"

#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"

namespace commsig::ingest {
namespace {

/// One scanned line with its split fields, for comparing the two scanners.
struct ScannedRow {
  std::string line;
  std::vector<std::string> fields;
  size_t total_fields = 0;
  uint64_t line_number = 0;
};

std::vector<ScannedRow> ScanReference(std::string_view data, char delim,
                                      size_t max_fields) {
  std::vector<ScannedRow> rows;
  LineScanner scanner(data);
  std::string_view line;
  std::string_view fields[8];
  while (scanner.Next(line)) {
    ScannedRow row;
    row.line = std::string(line);
    row.total_fields = SplitFields(line, delim, fields, max_fields);
    for (size_t i = 0; i < std::min(row.total_fields, max_fields); ++i) {
      row.fields.emplace_back(fields[i]);
    }
    row.line_number = scanner.line_number();
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<ScannedRow> ScanFused(std::string_view data, char delim,
                                  size_t max_fields) {
  std::vector<ScannedRow> rows;
  FusedRowScanner scanner(data, delim);
  std::string_view line;
  std::string_view fields[8];
  size_t total = 0;
  while (scanner.Next(line, fields, max_fields, total)) {
    ScannedRow row;
    row.line = std::string(line);
    row.total_fields = total;
    for (size_t i = 0; i < std::min(total, max_fields); ++i) {
      row.fields.emplace_back(fields[i]);
    }
    row.line_number = scanner.line_number();
    rows.push_back(std::move(row));
  }
  return rows;
}

void ExpectSameScan(std::string_view data, char delim = ',',
                    size_t max_fields = 4) {
  const std::vector<ScannedRow> expected =
      ScanReference(data, delim, max_fields);
  const std::vector<ScannedRow> actual = ScanFused(data, delim, max_fields);
  ASSERT_EQ(expected.size(), actual.size()) << "input: " << data;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].line, actual[i].line) << "row " << i;
    EXPECT_EQ(expected[i].fields, actual[i].fields) << "row " << i;
    EXPECT_EQ(expected[i].total_fields, actual[i].total_fields) << "row " << i;
    EXPECT_EQ(expected[i].line_number, actual[i].line_number) << "row " << i;
  }
}

TEST(FusedRowScannerTest, MatchesLineScannerOnPlainRows) {
  ExpectSameScan("a,b,1,2.5\nc,d,2,3.5\n");
  ExpectSameScan("a,b,1,2.5\nc,d,2,3.5");  // no trailing newline
}

TEST(FusedRowScannerTest, MatchesOnCommentsAndBlankLines) {
  ExpectSameScan("# header\na,b,1,2\n\n\nc,d,2,3\n# tail\n");
  ExpectSameScan("\n\n\n");
  ExpectSameScan("# only a comment");
  ExpectSameScan("");
}

TEST(FusedRowScannerTest, MatchesOnCarriageReturns) {
  ExpectSameScan("a,b,1,2\r\nc,d,2,3\r\n");
  ExpectSameScan("a,b,1,2\r");     // final unterminated line with \r
  ExpectSameScan("\r\n");          // blank after strip
  ExpectSameScan("a\rb,c\n");      // interior \r stays in the field
  ExpectSameScan("a,b,1,2,\r\n");  // \r right after a delimiter
}

TEST(FusedRowScannerTest, MatchesOnFieldCountEdgeCases) {
  ExpectSameScan(",,,\n");             // empty fields
  ExpectSameScan("a\n");               // one field
  ExpectSameScan("a,b,c,d,e,f,g\n");   // total count past max_fields
  ExpectSameScan("a,b\n", ',', 1);     // max_fields smaller than count
  ExpectSameScan("x;y;z\n", ';', 4);   // alternate delimiter
}

TEST(FusedRowScannerTest, MatchesAcrossBlockBoundaries) {
  // Rows sized so delimiters and newlines straddle the scanner's 64-byte
  // blocks, including a field that spans several blocks.
  std::string data;
  for (size_t len = 55; len <= 75; ++len) {
    data += std::string(len, 'x');
    data += ",b,1,2\n";
  }
  data += std::string(300, 'y');
  data += ",tail,9,9\n";
  ExpectSameScan(data);
}

TEST(FusedRowScannerTest, MatchesOnRandomishMixedBuffer) {
  // Deterministic mixed stress buffer: comments, blanks, \r\n, short and
  // long rows, overlong field counts.
  std::string data;
  for (int i = 0; i < 500; ++i) {
    switch (i % 7) {
      case 0:
        data += "# comment line ------\n";
        break;
      case 1:
        data += "\n";
        break;
      case 2:
        data += "h";
        data += std::to_string(i);
        data += ",s,1,2\r\n";
        break;
      case 3:
        data.append(1 + i % 90, 'a');
        data += ",b,3,4\n";
        break;
      case 4:
        data += "one,two,three,four,five,six\n";
        break;
      case 5:
        // Adversarial successor bytes for the SWAR byte-mask fallback: '-'
        // is ','+1 and '\x0b' is '\n'+1, the bytes an inexact zero-byte
        // detector falsely flags right after a true match.
        data += "a,-1,-0.5,-\n";
        data += "\x0bvt,x,-9,2\n";
        break;
      default:
        data += "host-";
        data += std::to_string(i * 7);
        data += ",svc,9,0.5\n";
    }
  }
  data += "last,row,1,2";  // unterminated
  ExpectSameScan(data);
}

}  // namespace
}  // namespace commsig::ingest
