#include "ingest/spsc_queue.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace commsig::ingest {
namespace {

TEST(BoundedSpscQueueTest, FifoWithinCapacity) {
  BoundedSpscQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  int v = 0;
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 3);
  EXPECT_EQ(q.ApproxSize(), 0u);
}

TEST(BoundedSpscQueueTest, TryPushFailsWhenFullAndKeepsItem) {
  BoundedSpscQueue<std::string> q(2);
  std::string a = "a";
  std::string b = "b";
  std::string c = "keep me";
  EXPECT_TRUE(q.TryPush(a));
  EXPECT_TRUE(q.TryPush(b));
  EXPECT_FALSE(q.TryPush(c));
  EXPECT_EQ(c, "keep me");  // not moved-from on failure
  std::string out;
  EXPECT_TRUE(q.Pop(out));
  EXPECT_TRUE(q.TryPush(c));
}

TEST(BoundedSpscQueueTest, TryPopFailsWhenEmpty) {
  BoundedSpscQueue<int> q(2);
  int v = 0;
  EXPECT_FALSE(q.TryPop(v));
  ASSERT_TRUE(q.Push(7));
  EXPECT_TRUE(q.TryPop(v));
  EXPECT_EQ(v, 7);
}

TEST(BoundedSpscQueueTest, CloseDrainsPendingItemsThenFails) {
  BoundedSpscQueue<int> q(4);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  q.Close();
  EXPECT_FALSE(q.Push(3));
  int v = 0;
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.Pop(v));  // closed and drained
  EXPECT_TRUE(q.closed());
}

TEST(BoundedSpscQueueTest, CloseWakesBlockedConsumer) {
  BoundedSpscQueue<int> q(2);
  std::thread consumer([&q] {
    int v = 0;
    EXPECT_FALSE(q.Pop(v));  // blocks until Close, then sees empty+closed
  });
  q.Close();
  consumer.join();
}

TEST(BoundedSpscQueueTest, CloseWakesBlockedProducer) {
  BoundedSpscQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&q] {
    EXPECT_FALSE(q.Push(2));  // queue full; Close must wake and fail it
  });
  q.Close();
  producer.join();
}

TEST(BoundedSpscQueueTest, BackpressureBlocksThenResumes) {
  BoundedSpscQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&q] { EXPECT_TRUE(q.Push(2)); });
  // Give the producer a chance to block on the full queue, then drain.
  int v = 0;
  while (!q.TryPop(v)) std::this_thread::yield();
  EXPECT_EQ(v, 1);
  producer.join();
  ASSERT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 2);
}

TEST(BoundedSpscQueueTest, StallCountersRecordBlocking) {
  BoundedSpscQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&q] { EXPECT_TRUE(q.Push(2)); });
  // Wait until the producer has actually gone to sleep on the full queue so
  // the stall counter observation is deterministic.
  while (q.producer_stalls() == 0) std::this_thread::yield();
  int v = 0;
  ASSERT_TRUE(q.Pop(v));
  producer.join();
  EXPECT_GE(q.producer_stalls(), 1u);
  ASSERT_TRUE(q.Pop(v));  // drain item 2 so the queue is empty again

  std::thread consumer([&q] {
    int got = 0;
    EXPECT_TRUE(q.Pop(got));
    EXPECT_EQ(got, 3);
  });
  while (q.consumer_stalls() == 0) std::this_thread::yield();
  ASSERT_TRUE(q.Push(3));
  consumer.join();
  EXPECT_GE(q.consumer_stalls(), 1u);
}

TEST(BoundedSpscQueueTest, MoveOnlyPayload) {
  BoundedSpscQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.Push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.Pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(BoundedSpscQueueTest, ZeroCapacityClampsToOne) {
  BoundedSpscQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.Push(5));
  int v = 0;
  EXPECT_TRUE(q.Pop(v));
  EXPECT_EQ(v, 5);
}

}  // namespace
}  // namespace commsig::ingest
