#include "eval/roc.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace commsig {
namespace {

TEST(RocTest, PerfectRankingGivesAucOne) {
  // Relevant item has the smallest distance.
  std::vector<double> scores = {0.1, 0.5, 0.6, 0.9};
  std::vector<bool> relevant = {true, false, false, false};
  RocResult r = ComputeRoc(scores, relevant);
  EXPECT_DOUBLE_EQ(r.auc, 1.0);
}

TEST(RocTest, WorstRankingGivesAucZero) {
  std::vector<double> scores = {0.9, 0.1, 0.2, 0.3};
  std::vector<bool> relevant = {true, false, false, false};
  EXPECT_DOUBLE_EQ(ComputeAuc(scores, relevant), 0.0);
}

TEST(RocTest, MiddleRankGivesFractionalAuc) {
  // Relevant ranks 3rd of 5 (2 irrelevant better, 2 worse): AUC = 2/4.
  std::vector<double> scores = {0.5, 0.1, 0.2, 0.8, 0.9};
  std::vector<bool> relevant = {true, false, false, false, false};
  EXPECT_DOUBLE_EQ(ComputeAuc(scores, relevant), 0.5);
}

TEST(RocTest, AllTiedGivesHalf) {
  std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  std::vector<bool> relevant = {true, false, true, false};
  EXPECT_DOUBLE_EQ(ComputeAuc(scores, relevant), 0.5);
}

TEST(RocTest, TieWithRelevantCountsHalf) {
  // One relevant tied with one irrelevant, one irrelevant clearly worse:
  // AUC = (0.5 + 1) / 2.
  std::vector<double> scores = {0.3, 0.3, 0.9};
  std::vector<bool> relevant = {true, false, false};
  EXPECT_DOUBLE_EQ(ComputeAuc(scores, relevant), 0.75);
}

TEST(RocTest, OrderIndependentUnderTies) {
  std::vector<double> scores1 = {0.3, 0.3, 0.9};
  std::vector<bool> rel1 = {true, false, false};
  std::vector<double> scores2 = {0.3, 0.3, 0.9};
  std::vector<bool> rel2 = {false, true, false};
  EXPECT_DOUBLE_EQ(ComputeAuc(scores1, rel1), ComputeAuc(scores2, rel2));
}

TEST(RocTest, DegenerateClassesGiveHalf) {
  EXPECT_DOUBLE_EQ(ComputeAuc({0.1, 0.2}, {true, true}), 0.5);
  EXPECT_DOUBLE_EQ(ComputeAuc({0.1, 0.2}, {false, false}), 0.5);
  EXPECT_DOUBLE_EQ(ComputeAuc({}, {}), 0.5);
}

TEST(RocTest, CurveStartsAtOriginEndsAtOne) {
  std::vector<double> scores = {0.2, 0.4, 0.1, 0.9};
  std::vector<bool> relevant = {true, false, true, false};
  RocResult r = ComputeRoc(scores, relevant);
  ASSERT_GE(r.curve.size(), 2u);
  EXPECT_DOUBLE_EQ(r.curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(r.curve.front().tpr, 0.0);
  EXPECT_NEAR(r.curve.back().fpr, 1.0, 1e-12);
  EXPECT_NEAR(r.curve.back().tpr, 1.0, 1e-12);
}

TEST(RocTest, CurveIsMonotone) {
  Rng rng(1);
  std::vector<double> scores;
  std::vector<bool> relevant;
  for (int i = 0; i < 200; ++i) {
    scores.push_back(rng.UniformDouble());
    relevant.push_back(rng.Bernoulli(0.2));
  }
  RocResult r = ComputeRoc(scores, relevant);
  for (size_t i = 1; i < r.curve.size(); ++i) {
    EXPECT_GE(r.curve[i].fpr + 1e-12, r.curve[i - 1].fpr);
    EXPECT_GE(r.curve[i].tpr + 1e-12, r.curve[i - 1].tpr);
  }
}

TEST(RocTest, RandomScoresGiveAucNearHalf) {
  Rng rng(2);
  double sum = 0.0;
  const int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> scores;
    std::vector<bool> relevant;
    for (int i = 0; i < 100; ++i) {
      scores.push_back(rng.UniformDouble());
      relevant.push_back(i < 10);
    }
    sum += ComputeAuc(scores, relevant);
  }
  EXPECT_NEAR(sum / kTrials, 0.5, 0.03);
}

TEST(RocTest, MultipleRelevantStepsUpFractionally) {
  // 2 relevant at the top of 4: AUC = 1.
  std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  std::vector<bool> relevant = {true, true, false, false};
  EXPECT_DOUBLE_EQ(ComputeAuc(scores, relevant), 1.0);
}

TEST(AverageRocTest, SingleCurvePassesThrough) {
  std::vector<double> scores = {0.1, 0.5, 0.9};
  std::vector<bool> relevant = {true, false, false};
  auto avg = AverageRocCurves({ComputeRoc(scores, relevant)}, 11);
  ASSERT_EQ(avg.size(), 11u);
  // Perfect curve: tpr = 1 at every positive fpr.
  EXPECT_DOUBLE_EQ(avg.back().tpr, 1.0);
  EXPECT_DOUBLE_EQ(avg[5].tpr, 1.0);
}

TEST(AverageRocTest, AveragesTwoCurves) {
  RocResult perfect = ComputeRoc({0.1, 0.5, 0.9}, {true, false, false});
  RocResult worst = ComputeRoc({0.9, 0.1, 0.2}, {true, false, false});
  auto avg = AverageRocCurves({perfect, worst}, 3);
  // At fpr=1 both reach tpr=1.
  EXPECT_DOUBLE_EQ(avg.back().tpr, 1.0);
  // At fpr=0.5: perfect=1, worst=0 -> mean 0.5.
  EXPECT_NEAR(avg[1].tpr, 0.5, 1e-9);
}

TEST(AverageRocTest, EmptyInputGivesFlatGrid) {
  auto avg = AverageRocCurves({}, 5);
  ASSERT_EQ(avg.size(), 5u);
  for (const auto& p : avg) EXPECT_DOUBLE_EQ(p.tpr, 0.0);
}

TEST(MeanAucTest, AveragesAucs) {
  RocResult a, b;
  a.auc = 0.8;
  b.auc = 0.6;
  EXPECT_DOUBLE_EQ(MeanAuc({a, b}), 0.7);
  EXPECT_DOUBLE_EQ(MeanAuc({}), 0.5);
}

}  // namespace
}  // namespace commsig
