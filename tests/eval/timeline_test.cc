#include "eval/timeline.h"

#include <gtest/gtest.h>

#include "core/scheme.h"
#include "graph/windower.h"

namespace commsig {
namespace {

Signature Sig(std::vector<Signature::Entry> entries) {
  return Signature::FromTopK(std::move(entries), 100);
}

const SignatureDistance kJac{DistanceKind::kJaccard};

TEST(TimelineTest, StableSignaturesGivePerfectTransitions) {
  std::vector<Signature> window = {Sig({{1, 1.0}}), Sig({{2, 1.0}})};
  std::vector<std::vector<Signature>> horizon = {window, window, window};
  auto transitions = PersistencePerTransition(horizon, kJac);
  ASSERT_EQ(transitions.size(), 2u);
  for (const auto& t : transitions) {
    EXPECT_DOUBLE_EQ(t.mean_persistence, 1.0);
    EXPECT_DOUBLE_EQ(t.std_persistence, 0.0);
  }
  EXPECT_EQ(transitions[0].from_window, 0u);
  EXPECT_EQ(transitions[1].from_window, 1u);
}

TEST(TimelineTest, SingleWindowHasNoTransitions) {
  std::vector<std::vector<Signature>> horizon = {{Sig({{1, 1.0}})}};
  EXPECT_TRUE(PersistencePerTransition(horizon, kJac).empty());
  EXPECT_TRUE(PersistenceByLag(horizon, kJac, 3).empty());
}

TEST(TimelineTest, DriftDecaysWithLag) {
  // One node whose signature drifts one element per window out of two:
  // lag-1 persistence > lag-2 > lag-3.
  std::vector<std::vector<Signature>> horizon;
  for (NodeId w = 0; w < 4; ++w) {
    horizon.push_back({Sig({{w, 1.0}, {w + 1, 1.0}})});
  }
  auto lags = PersistenceByLag(horizon, kJac, 3);
  ASSERT_EQ(lags.size(), 3u);
  EXPECT_EQ(lags[0].lag, 1u);
  // lag 1: overlap {w+1} of union 3 -> 1/3; lag 2+: disjoint -> 0.
  EXPECT_NEAR(lags[0].mean_persistence, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(lags[1].mean_persistence, 0.0);
  EXPECT_DOUBLE_EQ(lags[2].mean_persistence, 0.0);
  EXPECT_GE(lags[0].mean_persistence, lags[1].mean_persistence);
  EXPECT_GE(lags[1].mean_persistence, lags[2].mean_persistence);
}

TEST(TimelineTest, SampleCountsPoolAllValidPairs) {
  std::vector<Signature> window = {Sig({{1, 1.0}}), Sig({{2, 1.0}}),
                                   Sig({{3, 1.0}})};
  std::vector<std::vector<Signature>> horizon(5, window);
  auto lags = PersistenceByLag(horizon, kJac, 4);
  ASSERT_EQ(lags.size(), 4u);
  EXPECT_EQ(lags[0].samples, 4u * 3u);  // 4 transitions x 3 nodes
  EXPECT_EQ(lags[3].samples, 1u * 3u);
}

TEST(TimelineTest, MaxLagClampsToHorizon) {
  std::vector<std::vector<Signature>> horizon(3, {Sig({{1, 1.0}})});
  auto lags = PersistenceByLag(horizon, kJac, 99);
  EXPECT_EQ(lags.size(), 2u);
}

TEST(TimelineTest, IncrementalModeMatchesScratchTimeline) {
  // Sliding windows over a drifting stream: the incremental engine path
  // must produce the same per-window signatures as per-window ComputeAll
  // (bit-identical for the exact TT scheme), and therefore identical
  // persistence statistics.
  std::vector<TraceEvent> events;
  for (uint64_t t = 0; t < 30; ++t) {
    events.push_back({0, static_cast<NodeId>(2 + t % 3), t, 1.0});
    events.push_back({1, static_cast<NodeId>(2 + (t / 7) % 4), t, 2.0});
  }
  TraceWindower windower(8, /*window_length=*/8);
  auto windows = windower.SplitSliding(events, /*stride=*/2);
  ASSERT_GT(windows.size(), 4u);
  auto scheme = MakeTopTalkers({.k = 4});
  std::vector<NodeId> focal = {0, 1};

  auto scratch = ComputeSignatureTimeline(*scheme, windows, focal,
                                          {.incremental = false});
  auto incremental = ComputeSignatureTimeline(*scheme, windows, focal,
                                              {.incremental = true});
  ASSERT_EQ(scratch.size(), windows.size());
  EXPECT_EQ(incremental, scratch);

  auto t_scratch = PersistencePerTransition(scratch, kJac);
  auto t_incr = PersistencePerTransition(incremental, kJac);
  ASSERT_EQ(t_scratch.size(), t_incr.size());
  for (size_t i = 0; i < t_scratch.size(); ++i) {
    EXPECT_DOUBLE_EQ(t_incr[i].mean_persistence, t_scratch[i].mean_persistence);
  }
}

}  // namespace
}  // namespace commsig
