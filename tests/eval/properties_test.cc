#include "eval/properties.h"

#include <gtest/gtest.h>

namespace commsig {
namespace {

Signature Sig(std::vector<Signature::Entry> entries) {
  return Signature::FromTopK(std::move(entries), 100);
}

const SignatureDistance kJac{DistanceKind::kJaccard};

TEST(PersistenceTest, IdenticalSignaturesPersistPerfectly) {
  std::vector<Signature> sigs = {Sig({{1, 1.0}, {2, 1.0}}), Sig({{3, 1.0}})};
  auto values = PersistenceValues(sigs, sigs, kJac);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_DOUBLE_EQ(values[1], 1.0);
}

TEST(PersistenceTest, DisjointSignaturesHaveZeroPersistence) {
  std::vector<Signature> a = {Sig({{1, 1.0}})};
  std::vector<Signature> b = {Sig({{2, 1.0}})};
  auto values = PersistenceValues(a, b, kJac);
  EXPECT_DOUBLE_EQ(values[0], 0.0);
}

TEST(PersistenceTest, PartialOverlap) {
  std::vector<Signature> a = {Sig({{1, 1.0}, {2, 1.0}})};
  std::vector<Signature> b = {Sig({{1, 1.0}, {3, 1.0}})};
  auto values = PersistenceValues(a, b, kJac);
  EXPECT_NEAR(values[0], 1.0 / 3.0, 1e-12);
}

TEST(UniquenessTest, AllPairsCounted) {
  std::vector<Signature> sigs = {Sig({{1, 1.0}}), Sig({{2, 1.0}}),
                                 Sig({{3, 1.0}})};
  auto values = UniquenessValues(sigs, kJac);
  EXPECT_EQ(values.size(), 3u);  // C(3,2)
  for (double v : values) EXPECT_DOUBLE_EQ(v, 1.0);  // all disjoint
}

TEST(UniquenessTest, FewerThanTwoSignaturesYieldNothing) {
  std::vector<Signature> one = {Sig({{1, 1.0}})};
  EXPECT_TRUE(UniquenessValues(one, kJac).empty());
  EXPECT_TRUE(UniquenessValues({}, kJac).empty());
}

TEST(UniquenessTest, SamplingCapsPairCount) {
  std::vector<Signature> sigs;
  for (NodeId i = 0; i < 100; ++i) sigs.push_back(Sig({{i, 1.0}}));
  auto values = UniquenessValues(sigs, kJac, /*max_pairs=*/50, /*seed=*/3);
  EXPECT_EQ(values.size(), 50u);
  for (double v : values) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(UniquenessTest, SamplingIsDeterministicUnderSeed) {
  std::vector<Signature> sigs;
  for (NodeId i = 0; i < 30; ++i) {
    sigs.push_back(Sig({{i, 1.0}, {i + 1, 1.0}}));
  }
  auto a = UniquenessValues(sigs, kJac, 20, 7);
  auto b = UniquenessValues(sigs, kJac, 20, 7);
  EXPECT_EQ(a, b);
}

TEST(SummarizePropertiesTest, EllipseOfIdenticalPopulations) {
  std::vector<Signature> sigs = {Sig({{1, 1.0}}), Sig({{2, 1.0}}),
                                 Sig({{3, 1.0}})};
  PropertyEllipse e = SummarizeProperties(sigs, sigs, kJac);
  EXPECT_DOUBLE_EQ(e.mean_persistence, 1.0);
  EXPECT_DOUBLE_EQ(e.std_persistence, 0.0);
  EXPECT_DOUBLE_EQ(e.mean_uniqueness, 1.0);
  EXPECT_DOUBLE_EQ(e.std_uniqueness, 0.0);
  EXPECT_EQ(e.persistence_count, 3u);
  EXPECT_EQ(e.uniqueness_count, 3u);
}

TEST(SelfMatchRocTest, DistinctPersistentNodesScorePerfectly) {
  // Each node keeps its own disjoint signature across windows: every query
  // should rank itself first -> AUC 1.
  std::vector<Signature> sigs = {Sig({{10, 1.0}}), Sig({{20, 1.0}}),
                                 Sig({{30, 1.0}})};
  auto rocs = SelfMatchRoc(sigs, sigs, kJac);
  ASSERT_EQ(rocs.size(), 3u);
  EXPECT_DOUBLE_EQ(MeanAuc(rocs), 1.0);
}

TEST(SelfMatchRocTest, SwappedSignaturesScoreBadly) {
  // Node 0's window-t signature matches node 1's window-t+1 signature and
  // vice versa (a masquerade): self-match AUC collapses.
  std::vector<Signature> t = {Sig({{10, 1.0}}), Sig({{20, 1.0}})};
  std::vector<Signature> t1 = {Sig({{20, 1.0}}), Sig({{10, 1.0}})};
  auto rocs = SelfMatchRoc(t, t1, kJac);
  EXPECT_DOUBLE_EQ(MeanAuc(rocs), 0.0);
}

TEST(SelfMatchRocTest, MatchRocAliasBehavesIdentically) {
  std::vector<Signature> q = {Sig({{1, 1.0}}), Sig({{2, 1.0}})};
  auto a = SelfMatchRoc(q, q, kJac);
  auto b = MatchRoc(q, q, kJac);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].auc, b[i].auc);
  }
}

TEST(SetMatchRocTest, MultiNodeUserRanksItsSiblingsFirst) {
  // Candidates 0 and 1 belong to one user (near-identical signatures);
  // 2 and 3 are unrelated.
  std::vector<Signature> candidates = {
      Sig({{10, 1.0}, {11, 1.0}}), Sig({{10, 1.0}, {11, 1.0}, {12, 1.0}}),
      Sig({{50, 1.0}}), Sig({{60, 1.0}})};
  std::vector<size_t> query_indices = {0};
  std::vector<Signature> queries = {candidates[0]};
  std::vector<std::vector<size_t>> relevant = {{1}};
  auto rocs = SetMatchRoc(queries, query_indices, candidates, relevant, kJac,
                          /*exclude_self=*/true);
  ASSERT_EQ(rocs.size(), 1u);
  EXPECT_DOUBLE_EQ(rocs[0].auc, 1.0);
}

TEST(SetMatchRocTest, ExcludeSelfRemovesOwnIndex) {
  std::vector<Signature> candidates = {Sig({{1, 1.0}}), Sig({{2, 1.0}})};
  std::vector<size_t> query_indices = {0};
  std::vector<Signature> queries = {candidates[0]};
  // With self excluded and the only relevant candidate being index 1
  // (disjoint), AUC degenerates to 0.5 (single class after exclusion).
  std::vector<std::vector<size_t>> relevant = {{1}};
  auto rocs = SetMatchRoc(queries, query_indices, candidates, relevant, kJac);
  EXPECT_DOUBLE_EQ(rocs[0].auc, 0.5);
}

}  // namespace
}  // namespace commsig
