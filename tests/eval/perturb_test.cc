#include "eval/perturb.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_builder.h"

namespace commsig {
namespace {

CommGraph MakeBipartiteFlows(size_t hosts, size_t externals,
                             uint64_t seed = 5) {
  GraphBuilder b(hosts + externals);
  b.SetBipartiteLeftSize(static_cast<NodeId>(hosts));
  Rng rng(seed);
  for (NodeId h = 0; h < hosts; ++h) {
    size_t degree = 3 + rng.UniformInt(5);
    for (size_t d = 0; d < degree; ++d) {
      NodeId dst = static_cast<NodeId>(hosts + rng.UniformInt(externals));
      b.AddEdge(h, dst, 1.0 + static_cast<double>(rng.UniformInt(20)));
    }
  }
  return std::move(b).Build();
}

TEST(PerturbTest, DeterministicUnderSeed) {
  CommGraph g = MakeBipartiteFlows(20, 100);
  CommGraph a = Perturb(g, {.insert_fraction = 0.2, .delete_fraction = 0.2,
                            .seed = 9});
  CommGraph b = Perturb(g, {.insert_fraction = 0.2, .delete_fraction = 0.2,
                            .seed = 9});
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_DOUBLE_EQ(a.TotalWeight(), b.TotalWeight());
}

TEST(PerturbTest, DifferentSeedsDiffer) {
  CommGraph g = MakeBipartiteFlows(20, 100);
  CommGraph a = Perturb(g, {.insert_fraction = 0.3, .delete_fraction = 0.3,
                            .seed = 1});
  CommGraph b = Perturb(g, {.insert_fraction = 0.3, .delete_fraction = 0.3,
                            .seed = 2});
  EXPECT_NE(a.TotalWeight(), b.TotalWeight());
}

TEST(PerturbTest, ZeroFractionsLeaveGraphIntact) {
  CommGraph g = MakeBipartiteFlows(10, 50);
  CommGraph p = Perturb(g, {.insert_fraction = 0.0, .delete_fraction = 0.0,
                            .seed = 1});
  EXPECT_EQ(p.NumEdges(), g.NumEdges());
  EXPECT_DOUBLE_EQ(p.TotalWeight(), g.TotalWeight());
}

TEST(PerturbTest, DeletionsReduceTotalWeight) {
  CommGraph g = MakeBipartiteFlows(20, 100);
  CommGraph p = Perturb(g, {.insert_fraction = 0.0, .delete_fraction = 0.5,
                            .seed = 3});
  // Each deletion decrements ~one unit of weight.
  double expected_drop = 0.5 * static_cast<double>(g.NumEdges());
  EXPECT_NEAR(g.TotalWeight() - p.TotalWeight(), expected_drop,
              expected_drop * 0.1 + 1.0);
}

TEST(PerturbTest, InsertionsAddRoughlyAlphaEdges) {
  CommGraph g = MakeBipartiteFlows(20, 200);
  CommGraph p = Perturb(g, {.insert_fraction = 0.4, .delete_fraction = 0.0,
                            .seed = 4});
  // Inserted edges may coincide with existing ones (then they only add
  // weight), so the new-edge count is bounded by alpha*|E|.
  EXPECT_GE(p.NumEdges(), g.NumEdges());
  EXPECT_LE(p.NumEdges(),
            g.NumEdges() + static_cast<size_t>(0.4 * g.NumEdges()) + 1);
  EXPECT_GT(p.TotalWeight(), g.TotalWeight());
}

TEST(PerturbTest, PreservesBipartiteStructure) {
  CommGraph g = MakeBipartiteFlows(15, 80);
  CommGraph p = Perturb(g, {.insert_fraction = 0.5, .delete_fraction = 0.2,
                            .seed = 6});
  EXPECT_EQ(p.bipartite().left_size, g.bipartite().left_size);
  for (const auto& e : p.Edges()) {
    EXPECT_TRUE(p.InLeftPartition(e.src));
    EXPECT_FALSE(p.InLeftPartition(e.dst));
  }
}

TEST(PerturbTest, PreservesNodeUniverse) {
  CommGraph g = MakeBipartiteFlows(10, 40);
  CommGraph p = Perturb(g, {.insert_fraction = 0.1, .delete_fraction = 0.1,
                            .seed = 7});
  EXPECT_EQ(p.NumNodes(), g.NumNodes());
}

TEST(PerturbTest, AllWeightsStayPositive) {
  CommGraph g = MakeBipartiteFlows(20, 100);
  CommGraph p = Perturb(g, {.insert_fraction = 0.2, .delete_fraction = 0.9,
                            .seed = 8});
  for (const auto& e : p.Edges()) {
    EXPECT_GT(e.weight, 0.0);
  }
}

TEST(PerturbTest, HeavyDeletionRemovesEdges) {
  // Unit-weight graph: beta = 1 deletes roughly all weight.
  GraphBuilder b(6);
  b.SetBipartiteLeftSize(3);
  for (NodeId h = 0; h < 3; ++h) {
    for (NodeId d = 3; d < 6; ++d) b.AddEdge(h, d, 1.0);
  }
  CommGraph g = std::move(b).Build();
  CommGraph p = Perturb(g, {.insert_fraction = 0.0, .delete_fraction = 1.0,
                            .seed = 11});
  EXPECT_LT(p.NumEdges(), g.NumEdges());
}

TEST(PerturbTest, WorksOnGeneralGraphs) {
  GraphBuilder b(10);
  Rng rng(12);
  for (int e = 0; e < 30; ++e) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(10));
    NodeId d = static_cast<NodeId>(rng.UniformInt(10));
    if (s == d) continue;
    b.AddEdge(s, d, 1.0 + static_cast<double>(rng.UniformInt(5)));
  }
  CommGraph g = std::move(b).Build();
  CommGraph p = Perturb(g, {.insert_fraction = 0.3, .delete_fraction = 0.3,
                            .seed = 13});
  EXPECT_EQ(p.NumNodes(), g.NumNodes());
  EXPECT_GT(p.NumEdges(), 0u);
}

}  // namespace
}  // namespace commsig
