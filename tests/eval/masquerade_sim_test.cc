#include "eval/masquerade_sim.h"

#include <set>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace commsig {
namespace {

TEST(PlanMasqueradeTest, SelectsRequestedFraction) {
  std::vector<NodeId> pool(100);
  for (NodeId i = 0; i < 100; ++i) pool[i] = i;
  MasqueradePlan plan = PlanMasquerade(pool, 0.2, /*seed=*/1);
  EXPECT_EQ(plan.mapping.size(), 20u);
}

TEST(PlanMasqueradeTest, NoFixedPoints) {
  std::vector<NodeId> pool(50);
  for (NodeId i = 0; i < 50; ++i) pool[i] = i;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    MasqueradePlan plan = PlanMasquerade(pool, 0.5, seed);
    for (const auto& [v, u] : plan.mapping) {
      EXPECT_NE(v, u) << "seed " << seed;
    }
  }
}

TEST(PlanMasqueradeTest, MappingIsBijectionOnSelected) {
  std::vector<NodeId> pool(40);
  for (NodeId i = 0; i < 40; ++i) pool[i] = i;
  MasqueradePlan plan = PlanMasquerade(pool, 0.5, 3);
  std::set<NodeId> sources, targets;
  for (const auto& [v, u] : plan.mapping) {
    sources.insert(v);
    targets.insert(u);
  }
  EXPECT_EQ(sources.size(), plan.mapping.size());
  EXPECT_EQ(targets.size(), plan.mapping.size());
  EXPECT_EQ(sources, targets);  // a permutation of the selected set
}

TEST(PlanMasqueradeTest, TooFewNodesYieldsEmptyPlan) {
  std::vector<NodeId> pool = {1, 2, 3};
  EXPECT_TRUE(PlanMasquerade(pool, 0.3, 1).mapping.empty());  // 0 selected
  EXPECT_TRUE(PlanMasquerade(pool, 0.4, 1).mapping.empty());  // 1 selected
}

TEST(PlanMasqueradeTest, DeterministicUnderSeed) {
  std::vector<NodeId> pool(30);
  for (NodeId i = 0; i < 30; ++i) pool[i] = i;
  MasqueradePlan a = PlanMasquerade(pool, 0.4, 9);
  MasqueradePlan b = PlanMasquerade(pool, 0.4, 9);
  EXPECT_EQ(a.mapping, b.mapping);
}

TEST(MasqueradePlanTest, ContainsAndPerturbedNodes) {
  MasqueradePlan plan;
  plan.mapping = {{1, 2}, {2, 1}};
  EXPECT_TRUE(plan.Contains(1, 2));
  EXPECT_FALSE(plan.Contains(2, 3));
  auto nodes = plan.PerturbedNodes();
  EXPECT_EQ(nodes, (std::vector<NodeId>{1, 2}));
}

TEST(ApplyMasqueradeTest, RelabelsOutgoingEdges) {
  // 0 -> 5, 1 -> 6. Swap 0 and 1: edges become 1 -> 5, 0 -> 6.
  GraphBuilder b(7);
  b.AddEdge(0, 5, 2.0);
  b.AddEdge(1, 6, 3.0);
  CommGraph g = std::move(b).Build();
  MasqueradePlan plan;
  plan.mapping = {{0, 1}, {1, 0}};
  CommGraph relabeled = ApplyMasquerade(g, plan);
  EXPECT_DOUBLE_EQ(relabeled.EdgeWeight(1, 5), 2.0);
  EXPECT_DOUBLE_EQ(relabeled.EdgeWeight(0, 6), 3.0);
  EXPECT_FALSE(relabeled.HasEdge(0, 5));
}

TEST(ApplyMasqueradeTest, RelabelsIncomingEdges) {
  GraphBuilder b(3);
  b.AddEdge(2, 0, 4.0);
  CommGraph g = std::move(b).Build();
  MasqueradePlan plan;
  plan.mapping = {{0, 1}, {1, 0}};
  CommGraph relabeled = ApplyMasquerade(g, plan);
  EXPECT_DOUBLE_EQ(relabeled.EdgeWeight(2, 1), 4.0);
  EXPECT_FALSE(relabeled.HasEdge(2, 0));
}

TEST(ApplyMasqueradeTest, PreservesWeightAndStructure) {
  GraphBuilder b(6);
  b.SetBipartiteLeftSize(3);
  b.AddEdge(0, 3, 1.0);
  b.AddEdge(1, 4, 2.0);
  b.AddEdge(2, 5, 3.0);
  CommGraph g = std::move(b).Build();
  MasqueradePlan plan;
  plan.mapping = {{0, 1}, {1, 2}, {2, 0}};
  CommGraph relabeled = ApplyMasquerade(g, plan);
  EXPECT_DOUBLE_EQ(relabeled.TotalWeight(), g.TotalWeight());
  EXPECT_EQ(relabeled.NumEdges(), g.NumEdges());
  EXPECT_EQ(relabeled.bipartite().left_size, 3u);
}

TEST(ApplyMasqueradeTest, EmptyPlanIsIdentity) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1.0);
  CommGraph g = std::move(b).Build();
  CommGraph same = ApplyMasquerade(g, MasqueradePlan{});
  EXPECT_DOUBLE_EQ(same.EdgeWeight(0, 1), 1.0);
  EXPECT_EQ(same.NumEdges(), 1u);
}

}  // namespace
}  // namespace commsig
