#include "lsh/minhash.h"

#include <gtest/gtest.h>

namespace commsig {
namespace {

Signature SigOfRange(NodeId begin, NodeId end) {
  std::vector<Signature::Entry> entries;
  for (NodeId v = begin; v < end; ++v) entries.push_back({v, 1.0});
  return Signature::FromTopK(std::move(entries), 10000);
}

TEST(MinHashTest, IdenticalSetsAgreeFully) {
  MinHasher hasher(128);
  Signature s = SigOfRange(0, 50);
  auto a = hasher.Sketch(s);
  auto b = hasher.Sketch(s);
  EXPECT_DOUBLE_EQ(MinHasher::EstimateJaccardSimilarity(a, b), 1.0);
}

TEST(MinHashTest, DisjointSetsAgreeAlmostNever) {
  MinHasher hasher(256);
  auto a = hasher.Sketch(SigOfRange(0, 50));
  auto b = hasher.Sketch(SigOfRange(1000, 1050));
  EXPECT_LT(MinHasher::EstimateJaccardSimilarity(a, b), 0.05);
}

TEST(MinHashTest, SketchLengthMatchesNumHashes) {
  MinHasher hasher(64);
  EXPECT_EQ(hasher.Sketch(SigOfRange(0, 5)).size(), 64u);
}

TEST(MinHashTest, EmptySignatureNeverCollides) {
  MinHasher hasher(64);
  auto empty = hasher.Sketch(Signature());
  auto nonempty = hasher.Sketch(SigOfRange(0, 10));
  EXPECT_DOUBLE_EQ(MinHasher::EstimateJaccardSimilarity(empty, nonempty),
                   0.0);
  // Two empties agree fully (vacuously identical sets).
  auto empty2 = hasher.Sketch(Signature());
  EXPECT_DOUBLE_EQ(MinHasher::EstimateJaccardSimilarity(empty, empty2), 1.0);
}

struct OverlapCase {
  size_t shared;
  size_t each_extra;
  double true_jaccard() const {
    return static_cast<double>(shared) /
           static_cast<double>(shared + 2 * each_extra);
  }
};

class MinHashAccuracyTest : public ::testing::TestWithParam<OverlapCase> {};

TEST_P(MinHashAccuracyTest, EstimateNearTrueJaccard) {
  const OverlapCase& c = GetParam();
  std::vector<Signature::Entry> ea, eb;
  for (NodeId v = 0; v < c.shared; ++v) {
    ea.push_back({v, 1.0});
    eb.push_back({v, 1.0});
  }
  for (NodeId v = 0; v < c.each_extra; ++v) {
    ea.push_back({10000 + v, 1.0});
    eb.push_back({20000 + v, 1.0});
  }
  Signature a = Signature::FromTopK(std::move(ea), 100000);
  Signature b = Signature::FromTopK(std::move(eb), 100000);

  MinHasher hasher(1024);  // stderr ~ 1/32
  double est = MinHasher::EstimateJaccardSimilarity(hasher.Sketch(a),
                                                    hasher.Sketch(b));
  EXPECT_NEAR(est, c.true_jaccard(), 0.07);
}

INSTANTIATE_TEST_SUITE_P(
    Overlaps, MinHashAccuracyTest,
    ::testing::Values(OverlapCase{50, 50}, OverlapCase{80, 20},
                      OverlapCase{20, 80}, OverlapCase{100, 0},
                      OverlapCase{10, 10}));

TEST(MinHashTest, WeightsAreIgnored) {
  MinHasher hasher(128);
  Signature a = Signature::FromTopK({{1, 0.001}, {2, 100.0}}, 10);
  Signature b = Signature::FromTopK({{1, 50.0}, {2, 0.5}}, 10);
  EXPECT_DOUBLE_EQ(MinHasher::EstimateJaccardSimilarity(hasher.Sketch(a),
                                                        hasher.Sketch(b)),
                   1.0);
}

TEST(MinHashTest, DifferentSeedsGiveDifferentSketches) {
  MinHasher h1(64, 1), h2(64, 2);
  Signature s = SigOfRange(0, 20);
  EXPECT_NE(h1.Sketch(s), h2.Sketch(s));
}

}  // namespace
}  // namespace commsig
