#include "lsh/lsh_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"

namespace commsig {
namespace {

Signature SigOfNodes(std::vector<NodeId> nodes) {
  std::vector<Signature::Entry> entries;
  for (NodeId v : nodes) entries.push_back({v, 1.0});
  return Signature::FromTopK(std::move(entries), 10000);
}

TEST(LshIndexTest, SelfQueryRetrievesSelf) {
  LshIndex index;
  Signature s = SigOfNodes({1, 2, 3, 4, 5});
  index.Insert(42, s);
  auto candidates = index.Query(s);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 42u);
}

TEST(LshIndexTest, NearDuplicateRetrieved) {
  LshIndex index;
  Signature a = SigOfNodes({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  Signature b = SigOfNodes({1, 2, 3, 4, 5, 6, 7, 8, 9, 11});  // jac 9/11
  index.Insert(1, a);
  auto candidates = index.Query(b);
  EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), 1u) !=
              candidates.end());
}

TEST(LshIndexTest, DissimilarUsuallyNotRetrieved) {
  LshIndex index;
  Rng rng(5);
  // Index 50 random signatures over a large universe.
  for (NodeId id = 0; id < 50; ++id) {
    std::vector<NodeId> nodes;
    for (int i = 0; i < 10; ++i) {
      nodes.push_back(static_cast<NodeId>(rng.UniformInt(100000)));
    }
    index.Insert(id, SigOfNodes(nodes));
  }
  // A fresh random signature should collide with almost nothing.
  std::vector<NodeId> probe_nodes;
  for (int i = 0; i < 10; ++i) {
    probe_nodes.push_back(static_cast<NodeId>(rng.UniformInt(100000)));
  }
  auto candidates = index.Query(SigOfNodes(probe_nodes));
  EXPECT_LE(candidates.size(), 2u);
}

TEST(LshIndexTest, SimilarPairsFindsPlantedPair) {
  LshIndex index;
  Rng rng(6);
  // 100 random signatures plus one planted near-duplicate pair.
  for (NodeId id = 0; id < 100; ++id) {
    std::vector<NodeId> nodes;
    for (int i = 0; i < 10; ++i) {
      nodes.push_back(static_cast<NodeId>(rng.UniformInt(100000)));
    }
    index.Insert(id, SigOfNodes(nodes));
  }
  index.Insert(1000, SigOfNodes({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
  index.Insert(1001, SigOfNodes({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
  auto pairs = index.SimilarPairs(0.5);
  ASSERT_FALSE(pairs.empty());
  EXPECT_EQ(pairs[0].a, 1000u);
  EXPECT_EQ(pairs[0].b, 1001u);
  EXPECT_GT(pairs[0].estimated_similarity, 0.9);
}

TEST(LshIndexTest, SimilarPairsThresholdFilters) {
  LshIndex index;
  index.Insert(1, SigOfNodes({1, 2, 3, 4}));
  index.Insert(2, SigOfNodes({1, 2, 3, 4}));
  EXPECT_FALSE(index.SimilarPairs(0.99).empty());
  // Raising the threshold above 1 filters even identical pairs.
  EXPECT_TRUE(index.SimilarPairs(1.01).empty());
}

TEST(LshIndexTest, RecallOnSimilarPopulation) {
  // Plant 20 pairs with Jaccard ~0.8 among noise; banding at 32x4 should
  // recall nearly all of them.
  LshIndex index({.bands = 32, .rows_per_band = 4, .seed = 9});
  Rng rng(7);
  for (NodeId pair = 0; pair < 20; ++pair) {
    std::vector<NodeId> base;
    for (int i = 0; i < 9; ++i) {
      base.push_back(static_cast<NodeId>(rng.UniformInt(1000000)));
    }
    std::vector<NodeId> twin = base;
    base.push_back(static_cast<NodeId>(rng.UniformInt(1000000)));
    twin.push_back(static_cast<NodeId>(rng.UniformInt(1000000)));
    index.Insert(2 * pair, SigOfNodes(base));
    index.Insert(2 * pair + 1, SigOfNodes(twin));
  }
  auto pairs = index.SimilarPairs(0.3);
  size_t recalled = 0;
  for (NodeId pair = 0; pair < 20; ++pair) {
    for (const auto& p : pairs) {
      if (p.a == 2 * pair && p.b == 2 * pair + 1) {
        ++recalled;
        break;
      }
    }
  }
  EXPECT_GE(recalled, 18u);
}

TEST(LshIndexTest, SizeCounts) {
  LshIndex index;
  EXPECT_EQ(index.size(), 0u);
  index.Insert(1, SigOfNodes({1}));
  index.Insert(2, SigOfNodes({2}));
  EXPECT_EQ(index.size(), 2u);
}

TEST(LshIndexTest, PairsSortedByDescendingSimilarity) {
  LshIndex index;
  index.Insert(1, SigOfNodes({1, 2, 3, 4, 5, 6, 7, 8}));
  index.Insert(2, SigOfNodes({1, 2, 3, 4, 5, 6, 7, 8}));        // identical
  index.Insert(3, SigOfNodes({1, 2, 3, 4, 5, 6, 7, 100}));      // near
  auto pairs = index.SimilarPairs(0.0);
  ASSERT_GE(pairs.size(), 2u);
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_GE(pairs[i - 1].estimated_similarity,
              pairs[i].estimated_similarity);
  }
}

}  // namespace
}  // namespace commsig
