// Randomized property tests: invariants that must hold on *any* input,
// checked over seeded random graphs and traces (TEST_P over seeds).

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/distance.h"
#include "core/rwr.h"
#include "core/scheme.h"
#include "core/top_talkers.h"
#include "core/unexpected_talkers.h"
#include "eval/masquerade_sim.h"
#include "eval/perturb.h"
#include "graph/graph_builder.h"
#include "graph/windower.h"
#include "sketch/streaming_signatures.h"

namespace commsig {
namespace {

/// A random weighted digraph over n nodes with ~density*n^2 edges.
CommGraph RandomGraph(size_t n, double density, Rng& rng) {
  GraphBuilder b(n);
  size_t edges = static_cast<size_t>(density * static_cast<double>(n * n));
  for (size_t e = 0; e < edges; ++e) {
    NodeId src = static_cast<NodeId>(rng.UniformInt(n));
    NodeId dst = static_cast<NodeId>(rng.UniformInt(n));
    if (src == dst) continue;
    b.AddEdge(src, dst, 1.0 + static_cast<double>(rng.UniformInt(9)));
  }
  return std::move(b).Build();
}

class SeededPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Graph invariants.
// ---------------------------------------------------------------------------

TEST_P(SeededPropertyTest, BuilderTotalsMatchInsertedWeight) {
  Rng rng(GetParam());
  GraphBuilder b(30);
  double total = 0.0;
  for (int e = 0; e < 200; ++e) {
    NodeId src = static_cast<NodeId>(rng.UniformInt(30));
    NodeId dst = static_cast<NodeId>(rng.UniformInt(30));
    double w = rng.UniformDouble() + 0.1;
    b.AddEdge(src, dst, w);
    total += w;
  }
  CommGraph g = std::move(b).Build();
  EXPECT_NEAR(g.TotalWeight(), total, 1e-9);
  double out_sum = 0.0, in_sum = 0.0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    out_sum += g.OutWeight(v);
    in_sum += g.InWeight(v);
  }
  EXPECT_NEAR(out_sum, total, 1e-9);
  EXPECT_NEAR(in_sum, total, 1e-9);
}

TEST_P(SeededPropertyTest, TransposeConsistency) {
  Rng rng(GetParam());
  CommGraph g = RandomGraph(25, 0.1, rng);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const Edge& e : g.OutEdges(v)) {
      EXPECT_DOUBLE_EQ(g.EdgeWeight(v, e.node), e.weight);
      bool found = false;
      for (const Edge& r : g.InEdges(e.node)) {
        if (r.node == v && r.weight == e.weight) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
}

// ---------------------------------------------------------------------------
// Scheme invariants.
// ---------------------------------------------------------------------------

/// Applies a node-id permutation to a graph.
CommGraph PermuteGraph(const CommGraph& g, const std::vector<NodeId>& perm) {
  GraphBuilder b(g.NumNodes());
  for (const auto& e : g.Edges()) {
    b.AddEdge(perm[e.src], perm[e.dst], e.weight);
  }
  return std::move(b).Build();
}

TEST_P(SeededPropertyTest, OneHopSchemesAreLabelEquivariant) {
  // scheme(perm(G), perm(v)) == perm(scheme(G, v)) when no top-k cut is in
  // play (k >= degree), for both one-hop schemes.
  Rng rng(GetParam());
  CommGraph g = RandomGraph(20, 0.15, rng);
  std::vector<NodeId> perm(20);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  CommGraph pg = PermuteGraph(g, perm);

  TopTalkersScheme tt({.k = 100});
  UnexpectedTalkersScheme ut({.k = 100}, UtWeighting::kInverseInDegree);
  for (const SignatureScheme* scheme :
       {static_cast<const SignatureScheme*>(&tt),
        static_cast<const SignatureScheme*>(&ut)}) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      Signature original = scheme->Compute(g, v);
      Signature permuted = scheme->Compute(pg, perm[v]);
      ASSERT_EQ(original.size(), permuted.size());
      for (const auto& entry : original.entries()) {
        EXPECT_NEAR(permuted.WeightOf(perm[entry.node]), entry.weight,
                    1e-12);
      }
    }
  }
}

TEST_P(SeededPropertyTest, RwrMassConservationOnRandomGraphs) {
  Rng rng(GetParam());
  CommGraph g = RandomGraph(40, 0.08, rng);
  for (TraversalMode mode :
       {TraversalMode::kDirected, TraversalMode::kSymmetric}) {
    for (size_t hops : {0u, 1u, 4u}) {
      RwrScheme rwr({.k = 10},
                    {.reset = 0.15, .max_hops = hops, .traversal = mode});
      NodeId start = static_cast<NodeId>(rng.UniformInt(40));
      auto r = rwr.StationaryVector(g, start);
      double total = std::accumulate(r.begin(), r.end(), 0.0);
      EXPECT_NEAR(total, 1.0, 1e-8)
          << "mode " << static_cast<int>(mode) << " hops " << hops;
      for (double p : r) EXPECT_GE(p, -1e-15);
    }
  }
}

TEST_P(SeededPropertyTest, SignatureNeverContainsFocalNode) {
  Rng rng(GetParam());
  CommGraph g = RandomGraph(25, 0.2, rng);
  SchemeOptions opts{.k = 50};
  for (const char* spec : {"tt", "ut", "rwr(c=0.1,h=3)"}) {
    auto scheme = *CreateScheme(spec, opts);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_FALSE(scheme->Compute(g, v).Contains(v)) << spec;
    }
  }
}

// ---------------------------------------------------------------------------
// Distance invariants.
// ---------------------------------------------------------------------------

TEST_P(SeededPropertyTest, GraphDerivedDistancesStayInRange) {
  Rng rng(GetParam());
  CommGraph g = RandomGraph(30, 0.1, rng);
  TopTalkersScheme tt({.k = 5});
  std::vector<Signature> sigs;
  for (NodeId v = 0; v < g.NumNodes(); ++v) sigs.push_back(tt.Compute(g, v));
  for (DistanceKind kind : AllDistanceKindsExtended()) {
    for (size_t i = 0; i < sigs.size(); i += 3) {
      for (size_t j = 0; j < sigs.size(); j += 5) {
        double d = Distance(kind, sigs[i], sigs[j]);
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, 1.0);
        EXPECT_DOUBLE_EQ(d, Distance(kind, sigs[j], sigs[i]));
      }
      EXPECT_DOUBLE_EQ(Distance(kind, sigs[i], sigs[i]), 0.0);
    }
  }
}

TEST_P(SeededPropertyTest, JaccardTriangleInequality) {
  // Jaccard distance is a metric; spot-check the triangle inequality on
  // random signature triples.
  Rng rng(GetParam());
  auto random_sig = [&rng]() {
    std::vector<Signature::Entry> entries;
    size_t size = 1 + rng.UniformInt(8);
    for (size_t i = 0; i < size; ++i) {
      entries.push_back({static_cast<NodeId>(rng.UniformInt(15)), 1.0});
    }
    return Signature::FromTopK(std::move(entries), 100);
  };
  for (int trial = 0; trial < 200; ++trial) {
    Signature a = random_sig(), b = random_sig(), c = random_sig();
    double ab = Distance(DistanceKind::kJaccard, a, b);
    double bc = Distance(DistanceKind::kJaccard, b, c);
    double ac = Distance(DistanceKind::kJaccard, a, c);
    EXPECT_LE(ac, ab + bc + 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Eval invariants.
// ---------------------------------------------------------------------------

TEST_P(SeededPropertyTest, PerturbKeepsWeightAccounting) {
  Rng rng(GetParam());
  CommGraph g = RandomGraph(30, 0.1, rng);
  if (g.NumEdges() == 0) return;
  const double alpha = 0.3;
  CommGraph p = Perturb(g, {.insert_fraction = alpha,
                            .delete_fraction = alpha,
                            .seed = GetParam() * 31});
  // Deletions remove ~alpha*|E| units; insertions add ~alpha*|E| draws
  // from the weight pool (mean = mean edge weight). Bound loosely.
  const double mean_w = g.TotalWeight() / static_cast<double>(g.NumEdges());
  const double delta = p.TotalWeight() - g.TotalWeight();
  const double budget = alpha * static_cast<double>(g.NumEdges());
  EXPECT_GE(delta, -budget * 1.1 - 1.0);
  EXPECT_LE(delta, budget * mean_w * 2.0 + 1.0);
  EXPECT_EQ(p.NumNodes(), g.NumNodes());
}

TEST_P(SeededPropertyTest, MasqueradePreservesDegreeMultiset) {
  // Relabelling is a bijection, so the multiset of (out-degree, in-degree)
  // pairs is invariant.
  Rng rng(GetParam());
  CommGraph g = RandomGraph(30, 0.1, rng);
  std::vector<NodeId> pool(30);
  std::iota(pool.begin(), pool.end(), 0);
  MasqueradePlan plan = PlanMasquerade(pool, 0.5, GetParam());
  CommGraph m = ApplyMasquerade(g, plan);
  std::multiset<std::pair<size_t, size_t>> before, after;
  for (NodeId v = 0; v < 30; ++v) {
    before.emplace(g.OutDegree(v), g.InDegree(v));
    after.emplace(m.OutDegree(v), m.InDegree(v));
  }
  EXPECT_EQ(before, after);
  EXPECT_DOUBLE_EQ(m.TotalWeight(), g.TotalWeight());
}

TEST_P(SeededPropertyTest, WindowerPartitionsEventWeight) {
  Rng rng(GetParam());
  std::vector<TraceEvent> events;
  double total = 0.0;
  for (int e = 0; e < 300; ++e) {
    TraceEvent ev{static_cast<NodeId>(rng.UniformInt(10)),
                  static_cast<NodeId>(rng.UniformInt(10)),
                  rng.UniformInt(1000), rng.UniformDouble() + 0.1};
    total += ev.weight;
    events.push_back(ev);
  }
  TraceWindower windower(10, 100);
  auto windows = windower.Split(events);
  double window_total = 0.0;
  for (const auto& g : windows) window_total += g.TotalWeight();
  EXPECT_NEAR(window_total, total, 1e-9);
}

// ---------------------------------------------------------------------------
// Streaming invariants.
// ---------------------------------------------------------------------------

TEST_P(SeededPropertyTest, StreamingTtExactWhenCapacitySuffices) {
  // With SpaceSaving capacity >= a node's distinct destinations, the
  // streaming TT signature equals the exact one.
  Rng rng(GetParam());
  std::vector<TraceEvent> events;
  GraphBuilder b(50);
  std::vector<NodeId> focal = {0, 1, 2};
  for (int e = 0; e < 400; ++e) {
    NodeId src = focal[rng.UniformInt(3)];
    NodeId dst = static_cast<NodeId>(10 + rng.UniformInt(20));
    double w = 1.0 + static_cast<double>(rng.UniformInt(5));
    events.push_back({src, dst, 0, w});
    b.AddEdge(src, dst, w);
  }
  CommGraph g = std::move(b).Build();

  StreamingSignatureBuilder::Options opts;
  opts.heavy_hitter_capacity = 64;  // > 20 distinct destinations
  StreamingSignatureBuilder builder(focal, opts);
  builder.ObserveAll(events);

  TopTalkersScheme tt({.k = 10});
  for (NodeId host : focal) {
    Signature exact = tt.Compute(g, host);
    Signature approx = builder.TopTalkers(host, 10);
    ASSERT_EQ(exact.size(), approx.size());
    for (const auto& entry : exact.entries()) {
      EXPECT_NEAR(approx.WeightOf(entry.node), entry.weight, 1e-12);
    }
  }
}

}  // namespace
}  // namespace commsig
