#!/usr/bin/env python3
"""Unit tests for tools/analyze (commsig-analyzer).

Covers both frontends and all four passes:
  - cpplite parses every real TU in src/ and tools/
  - each pass flags its bad fixture and stays quiet on the good twin
  - the clang AST-JSON walker lowers the captured-shape dump fixture to
    the same IR (no clang binary needed)
  - suppression, baseline fingerprints, IR round-trip
  - docs/obs_schema.json is in sync with the code (freshness gate)
  - the driver itself exits clean on the repo

Run directly or via ctest (analyzer_test).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO, "tools", "analyze"))

import analyze  # noqa: E402
import clang_frontend  # noqa: E402
import cpplite  # noqa: E402
from ir import Finding, Project, TuFacts  # noqa: E402
from passes import determinism, lock_order, obs_schema  # noqa: E402
from passes import result_discipline  # noqa: E402

FIXTURES = os.path.join(REPO, "tests", "tools", "fixtures")


def fixture_project(name: str, rel: str) -> Project:
    path = os.path.join(FIXTURES, name + ".cc")
    return Project([cpplite.parse_file(path, rel)])


def rules(findings) -> set:
    return {f.rule for f in findings}


class SchemaCtx:
    schema_path = os.path.join(FIXTURES, "obs_schema.json")
    schema_rel = "tests/tools/fixtures/obs_schema.json"


class CpplineFrontendTest(unittest.TestCase):
    def test_parses_every_real_tu(self):
        files = analyze.source_files(REPO)
        self.assertGreater(len(files), 100)
        for rel in files:
            tu = cpplite.parse_file(os.path.join(REPO, rel), rel)
            self.assertEqual(tu.path, rel)

    def test_extracts_thread_safety_annotations(self):
        tu = cpplite.parse_file(
            os.path.join(REPO, "src", "obs", "metrics.h"),
            "src/obs/metrics.h")
        fields = {(f.cls, f.name): f for f in tu.fields}
        self.assertEqual(fields[("MetricsRegistry", "counters_")].guarded_by,
                         "mutex_")
        methods = {(m.cls, m.name): m for m in tu.methods}
        self.assertIn("mutex_",
                      methods[("MetricsRegistry", "GetCounter")].excludes)

    def test_ir_json_round_trip(self):
        tu = cpplite.parse_file(
            os.path.join(REPO, "src", "data", "flow_generator.cc"),
            "src/data/flow_generator.cc")
        restored = TuFacts.from_json(tu.to_json())
        self.assertIsNotNone(restored)
        self.assertEqual(len(restored.functions), len(tu.functions))
        gen = [f for f in restored.functions if f.name == "Generate"][0]
        self.assertTrue(any("unordered_set" in d.type_text
                            for d in gen.decls))

    def test_version_mismatch_invalidates_cache(self):
        tu = cpplite.parse_file(
            os.path.join(FIXTURES, "result_good.cc"), "x.cc")
        stale = tu.to_json().replace('"ir_version": ', '"ir_version": 1')
        self.assertIsNone(TuFacts.from_json(stale))


class DeterminismPassTest(unittest.TestCase):
    def test_bad_fixture_flagged(self):
        proj = fixture_project("determinism_bad", "src/core/fixture.cc")
        found = determinism.run(proj, None)
        self.assertEqual(rules(found),
                         {"unordered-order-escape", "unordered-iter-sink",
                          "raw-rand", "nondeterministic-seed",
                          "wall-clock-in-core", "raw-simd-intrinsic"})

    def test_good_fixture_clean(self):
        proj = fixture_project("determinism_good", "src/core/fixture.cc")
        self.assertEqual(determinism.run(proj, None), [])

    def test_clock_rules_scoped_to_deterministic_layers(self):
        # The same fixture parsed as an obs/ TU keeps the container rules
        # but drops the clock rule: obs code may read real time.
        proj = fixture_project("determinism_bad", "src/obs/fixture.cc")
        self.assertNotIn("wall-clock-in-core", rules(determinism.run(proj,
                                                                     None)))


class LockOrderPassTest(unittest.TestCase):
    def test_cycle_through_obs_macro(self):
        proj = fixture_project("lock_order_bad", "src/foo/locks.cc")
        found = lock_order.run(proj, None)
        self.assertEqual(rules(found), {"cycle"})
        self.assertIn("MetricsRegistry::mutex_", found[0].message)
        self.assertIn("Worker::mu_", found[0].message)

    def test_released_guard_breaks_the_cycle(self):
        proj = fixture_project("lock_order_good", "src/foo/locks.cc")
        self.assertEqual(lock_order.run(proj, None), [])

    def test_real_tree_is_acyclic(self):
        tus = [cpplite.parse_file(os.path.join(REPO, rel), rel)
               for rel in analyze.source_files(REPO)]
        self.assertEqual(lock_order.run(Project(tus), None), [])


class ObsSchemaPassTest(unittest.TestCase):
    def test_bad_fixture_drifts_in_every_way(self):
        proj = fixture_project("obs_schema_bad", "src/foo/obs.cc")
        found = obs_schema.run(proj, SchemaCtx())
        self.assertLessEqual(
            {"undeclared", "stale", "prereg-drift", "dynamic-name",
             "naming", "not-preregistered"},
            rules(found))

    def test_good_fixture_only_hits_the_stale_entry(self):
        # fixture/stale_counter is deliberately unused by the good twin.
        proj = fixture_project("obs_schema_good", "src/foo/obs.cc")
        found = obs_schema.run(proj, SchemaCtx())
        self.assertEqual([(f.rule, "fixture/stale_counter" in f.message)
                          for f in found], [("stale", True)])

    def test_checked_in_schema_is_fresh(self):
        # Regenerating docs/obs_schema.json from the live tree must be a
        # no-op; if this fails, run tools/analyze/analyze.py
        # --update-schema and commit the diff.
        tus = [cpplite.parse_file(os.path.join(REPO, rel), rel)
               for rel in analyze.source_files(REPO)]
        built = obs_schema.build_schema(Project(tus))
        with open(os.path.join(REPO, "docs", "obs_schema.json"),
                  encoding="utf-8") as f:
            checked_in = json.load(f)
        self.assertEqual(built["categories"], checked_in["categories"])
        self.assertEqual(built["preregistered"],
                         checked_in["preregistered"])


class ResultPassTest(unittest.TestCase):
    def test_bad_fixture_flagged(self):
        proj = fixture_project("result_bad", "src/foo/result.cc")
        found = result_discipline.run(proj, None)
        self.assertEqual([f.rule for f in sorted(found,
                                                 key=lambda f: f.line)],
                         ["discarded", "discarded", "unchecked-value"])

    def test_good_fixture_clean(self):
        proj = fixture_project("result_good", "src/foo/result.cc")
        self.assertEqual(result_discipline.run(proj, None), [])

    def test_ambiguous_names_never_flagged(self):
        code = (
            "namespace commsig {\n"
            "Status Run();\n"
            "int Run(int x);\n"          # same name, non-Result overload
            "void F() { Run(); }\n"
            "}\n")
        tu = cpplite.parse_file("mem.cc", "src/foo/amb.cc", text=code)
        self.assertEqual(result_discipline.run(Project([tu]), None), [])


class ClangFrontendTest(unittest.TestCase):
    """The AST-JSON walker, exercised on a captured-shape dump (the
    container has no clang; CI runs the live-frontend path)."""

    def setUp(self):
        with open(os.path.join(FIXTURES, "clang_ast_fixture.json"),
                  encoding="utf-8") as f:
            ast = json.load(f)
        self.tu = clang_frontend.facts_from_ast(
            "src/foo/fixture.cc", "/repo/src/foo/fixture.cc", ast)

    def test_fields_and_annotations(self):
        items = [f for f in self.tu.fields if f.name == "items_"][0]
        self.assertEqual(items.cls, "Store")
        self.assertEqual(items.guarded_by, "mu_")
        flush = [m for m in self.tu.methods if m.name == "Flush"][0]
        self.assertEqual(flush.excludes, ["mu_"])

    def test_function_body_facts(self):
        emit = [f for f in self.tu.functions if f.name == "Emit"][0]
        self.assertEqual([l.mutex_text for l in emit.locks], ["store.mu_"])
        get = [c for c in emit.calls if c.name == "GetCounter"][0]
        self.assertEqual(get.str_args, ["fixture/emitted"])
        self.assertEqual(get.line, 16)
        self.assertEqual([(l.seq_text, l.line) for l in emit.loops],
                         [("store.items_", 18)])
        self.assertIn("PutU64", [c.name for c in emit.calls])

    def test_result_pass_runs_on_clang_ir(self):
        found = result_discipline.run(Project([self.tu]), None)
        self.assertEqual([(f.rule, f.line) for f in found],
                         [("discarded", 22)])


class DriverTest(unittest.TestCase):
    def test_suppression_matches_pass_and_rule(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "s.cc")
            with open(path, "w", encoding="utf-8") as f:
                f.write("int a;\n"
                        "Go();  // NOLINT(analyze-result)\n"
                        "// NOLINT(analyze-result-discarded)\n"
                        "Go();\n"
                        "Go();  // NOLINT(analyze-determinism)\n")
            def finding(line):
                return Finding("s.cc", line, "result", "discarded", "m")
            self.assertTrue(analyze.suppressed(tmp, finding(2)))
            self.assertTrue(analyze.suppressed(tmp, finding(4)))
            self.assertFalse(analyze.suppressed(tmp, finding(5)))

    def test_baseline_hides_known_findings_only(self):
        f1 = Finding("a.cc", 3, "result", "discarded", "m1")
        f2 = Finding("a.cc", 9, "result", "discarded", "m2")
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "baseline.json")
            with open(path, "w", encoding="utf-8") as f:
                json.dump({"fingerprints": [f1.fingerprint()]}, f)
            baseline = analyze.load_baseline(path)
        self.assertIn(f1.fingerprint(), baseline)
        self.assertNotIn(f2.fingerprint(), baseline)
        # Fingerprints are line-independent: moving a finding does not
        # churn the baseline.
        moved = Finding("a.cc", 300, "result", "discarded", "m1")
        self.assertEqual(moved.fingerprint(), f1.fingerprint())

    def test_shipped_baseline_is_empty(self):
        with open(os.path.join(REPO, "tools", "analyze", "baseline.json"),
                  encoding="utf-8") as f:
            self.assertEqual(json.load(f)["fingerprints"], [])

    def test_driver_clean_on_repo(self):
        proc = subprocess.run(
            [sys.executable,
             os.path.join(REPO, "tools", "analyze", "analyze.py"),
             "--frontend", "cpplite"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0,
                         proc.stdout + "\n" + proc.stderr)


if __name__ == "__main__":
    unittest.main()
