#!/usr/bin/env python3
"""Round-trip gate: docs/obs_schema.json vs a live `commsig stream` run.

The static obs-schema pass proves the schema matches the *source*; this
test proves it matches the *runtime*: every metric the binary actually
exports and every log event it actually emits must be declared in the
schema, and every preregistered metric must be visible in the export even
when nothing incremented it.  Together they pin the schema from both
sides, so a drift in either direction fails CI.

Usage: obs_schema_roundtrip_test.py <path-to-commsig-binary>
(ctest passes $<TARGET_FILE:commsig_cli>.)
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))

COMMSIG = None  # resolved in main()


def tiny_trace(path: str) -> None:
    """Two windows of traffic from three sources; enough to exercise the
    stream pipeline, checkpointing stays off."""
    rows = []
    for w in (0, 100):
        for t in range(0, 90, 10):
            rows.append(f"src{t % 3},dst{t % 7},{w + t},1.5")
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(rows) + "\n")


class ObsSchemaRoundTripTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        with open(os.path.join(REPO, "docs", "obs_schema.json"),
                  encoding="utf-8") as f:
            cls.schema = json.load(f)
        cls.tmp = tempfile.TemporaryDirectory()
        trace = os.path.join(cls.tmp.name, "trace.csv")
        tiny_trace(trace)
        cls.metrics_path = os.path.join(cls.tmp.name, "metrics.json")
        cls.log_path = os.path.join(cls.tmp.name, "log.jsonl")
        proc = subprocess.run(
            [COMMSIG, "stream", "--trace", trace, "--window-length", "100",
             "--metrics-out", cls.metrics_path, "--log-file", cls.log_path,
             "--log-level", "debug"],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        with open(cls.metrics_path, encoding="utf-8") as f:
            cls.metrics = json.load(f)

    @classmethod
    def tearDownClass(cls):
        cls.tmp.cleanup()

    def test_live_metrics_are_all_declared(self):
        cats = self.schema["categories"]
        for kind in ("counters", "gauges", "histograms"):
            live = set(self.metrics.get(kind, {}))
            declared = set(cats[kind])
            self.assertLessEqual(
                live, declared,
                f"{kind} exported at runtime but missing from "
                f"docs/obs_schema.json: {sorted(live - declared)}")

    def test_preregistered_metrics_are_visible_untouched(self):
        live = set()
        for kind in ("counters", "gauges", "histograms"):
            live |= set(self.metrics.get(kind, {}))
        prereg = set(self.schema["preregistered"])
        self.assertLessEqual(
            prereg, live,
            "preregistered metrics absent from a live export (scrapers "
            f"would never see them): {sorted(prereg - live)}")

    def test_live_log_events_are_all_declared(self):
        declared = set(self.schema["categories"]["log_events"])
        seen = set()
        with open(self.log_path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line:
                    seen.add(json.loads(line)["event"])
        self.assertTrue(seen, "stream run emitted no log lines")
        self.assertLessEqual(
            seen, declared,
            "log events emitted at runtime but missing from "
            f"docs/obs_schema.json: {sorted(seen - declared)}")


def main() -> int:
    global COMMSIG
    if len(sys.argv) < 2 or not os.path.isfile(sys.argv[1]):
        print("usage: obs_schema_roundtrip_test.py <commsig-binary>",
              file=sys.stderr)
        return 2
    COMMSIG = sys.argv[1]
    unittest.main(argv=[sys.argv[0]] + sys.argv[2:])
    return 0


if __name__ == "__main__":
    sys.exit(main())
