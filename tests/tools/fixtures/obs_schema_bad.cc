// Analyzer fixture: every observable below drifts from the fixture schema
// (tests/tools/fixtures/obs_schema.json) in a different way.  Parsed by
// tests/tools/analyzer_test.py; never built.

#include <string>

#include "obs/log.h"
#include "obs/obs.h"

namespace commsig {

void PreRegisterCoreMetrics() {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("fixture/known_counter");
  // prereg-drift: the schema's preregistered list also expects
  // fixture/known_histogram, which is not registered here.
}

void Record(const std::string& shard) {
  // undeclared: not in the schema's counters list.
  COMMSIG_COUNTER_ADD("fixture/surprise_counter", 1);
  // naming: metric names are area/metric_name, not CamelCase.
  COMMSIG_GAUGE_SET("FixtureBadName", 2.0);
  // dynamic-name: the schema can never enumerate a computed name.
  COMMSIG_COUNTER_ADD("fixture/" + shard, 1);
  // undeclared + naming: log events are flat snake_case, no slashes.
  obs::LogInfo("fixture/slashed_event");
}

}  // namespace commsig
