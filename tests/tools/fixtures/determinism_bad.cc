// Analyzer fixture: every function below violates a determinism rule.
// Parsed by tests/tools/analyzer_test.py as if it lived in src/core/, so
// the deterministic-layer clock rules apply.  Never built.

#include <algorithm>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace commsig {

// unordered-order-escape: hash iteration order copied into a vector that
// is never sorted, then indexed — layout differs across standard
// libraries.
std::vector<uint32_t> EscapeOrder(const std::unordered_set<uint32_t>& src) {
  std::unordered_set<uint32_t> chosen = src;
  std::vector<uint32_t> picks;
  picks.assign(chosen.begin(), chosen.end());
  return picks;
}

// unordered-iter-sink: serialization path iterates the map directly.
class Table {
 public:
  void AppendTo(ByteWriter& out) const {
    for (const auto& kv : weights_) {
      out.PutU64(kv.first);
      out.PutDouble(kv.second);
    }
  }

 private:
  std::unordered_map<uint64_t, double> weights_;
};

// raw-rand: libc randomness is not derived from the run seed.
int RollDice() { return rand() % 6; }

// nondeterministic-seed: random_device output differs per run.
uint32_t PickSeed() {
  std::random_device rd;
  return rd();
}

// wall-clock-in-core: real time inside a deterministic layer.
uint64_t StampNow() { return static_cast<uint64_t>(time(nullptr)); }

// raw-simd-intrinsic: ISA code outside src/common/simd.h loses the scalar
// fallback the portable wrappers guarantee.
void ScaleRaw(float* data) {
  __m128 v = _mm_loadu_ps(data);
  _mm_storeu_ps(data, _mm_mul_ps(v, _mm_set1_ps(2.0f)));
}

}  // namespace commsig
