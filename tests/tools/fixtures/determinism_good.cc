// Analyzer fixture: determinism-clean counterparts of determinism_bad.cc.
// Exercises the sanctioned idioms the pass must NOT flag: collect-then-
// sort staging, membership-only unordered use, and seeded Rng.  Parsed by
// tests/tools/analyzer_test.py as src/core/; never built.

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace commsig {

// Copying out of an unordered container is fine once the copy is sorted.
std::vector<uint32_t> SortedOrder(const std::unordered_set<uint32_t>& src) {
  std::unordered_set<uint32_t> chosen = src;
  std::vector<uint32_t> picks;
  picks.assign(chosen.begin(), chosen.end());
  std::sort(picks.begin(), picks.end());
  return picks;
}

// The repo's serialization idiom: stage keys, sort, then emit.
class Table {
 public:
  void AppendTo(ByteWriter& out) const {
    std::vector<uint64_t> keys;
    keys.reserve(weights_.size());
    for (const auto& kv : weights_) keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    for (uint64_t k : keys) {
      out.PutU64(k);
      out.PutDouble(weights_.at(k));
    }
  }

 private:
  std::unordered_map<uint64_t, double> weights_;
};

// Membership-only use never observes iteration order.
bool Seen(const std::unordered_set<uint32_t>& seen, uint32_t key) {
  return seen.count(key) > 0;
}

// Randomness through the seeded Rng is reproducible by construction.
uint64_t Draw(Rng& rng) { return rng.UniformInt(6); }

// Vector math through the portable wrappers keeps the scalar fallback.
void ScalePortable(double* data, size_t n) {
  simd::VecD two = simd::VecD::Broadcast(2.0);
  simd::ScaleInPlace(data, n, two);
}

}  // namespace commsig
