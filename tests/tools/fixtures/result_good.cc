// Analyzer fixture: Result/Status discipline done right — each shape here
// must produce zero findings.  Parsed by tests/tools/analyzer_test.py;
// never built.

#include "common/result.h"

namespace commsig {

Result<int> ParseCount(const char* text);
Status PersistCount(int count);
int PlainCount();

int Ingest(const char* text) {
  // Bound and checked before use.
  Result<int> parsed = ParseCount(text);
  if (!parsed.ok()) return -1;
  // Deliberate discard is spelled out.
  (void)PersistCount(parsed.value());
  // Non-Result returns may be dropped freely.
  PlainCount();
  return parsed.value();
}

}  // namespace commsig
