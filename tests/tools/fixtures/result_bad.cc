// Analyzer fixture: Result/Status discipline violations.  Parsed by
// tests/tools/analyzer_test.py; never built.

#include "common/result.h"

namespace commsig {

Result<int> ParseCount(const char* text);
Status PersistCount(int count);

void Ingest(const char* text) {
  // discarded: the Result (and the parse failure inside it) vanishes.
  ParseCount(text);
  // discarded: a dropped Status loses the I/O error.
  PersistCount(7);
}

int Applied(const char* text) {
  Result<int> parsed = ParseCount(text);
  // unchecked-value: no ok() check anywhere in this function, and
  // COMMSIG_CHECK aborts the process on a bad access.
  return parsed.value();
}

}  // namespace commsig
