// Analyzer fixture: observables in perfect sync with the fixture schema
// (tests/tools/fixtures/obs_schema.json).  Parsed by
// tests/tools/analyzer_test.py; never built.

#include "obs/log.h"
#include "obs/obs.h"

namespace commsig {

void PreRegisterCoreMetrics() {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("fixture/known_counter");
  reg.GetHistogram("fixture/known_histogram");
}

void Record() {
  COMMSIG_COUNTER_ADD("fixture/known_counter", 1);
  COMMSIG_HISTOGRAM_OBSERVE("fixture/known_histogram", 3.5);
  COMMSIG_SPAN("fixture/record");
  obs::LogInfo("fixture_recorded");
}

}  // namespace commsig
