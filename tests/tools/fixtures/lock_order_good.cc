// Analyzer fixture: the deadlock-free version of lock_order_bad.cc.
// Worker::Drain bumps the counter AFTER releasing mu_ (the fix the
// historical ThreadPool deadlock got), so every edge points one way:
// MetricsRegistry::mutex_ -> Worker::mu_, and the macro edge originates
// from no held lock.  Parsed by tests/tools/analyzer_test.py; never built.

#include "common/mutex.h"
#include "obs/obs.h"

namespace commsig {

class Worker {
 public:
  void Submit() COMMSIG_EXCLUDES(mu_);
  void Drain();

 private:
  mutable Mutex mu_;
};

class MetricsRegistry {
 public:
  void Poll(Worker& w);

 private:
  mutable Mutex mutex_;
};

void MetricsRegistry::Poll(Worker& w) {
  MutexLock lock(mutex_);
  w.Submit();  // MetricsRegistry::mutex_ -> Worker::mu_, no reverse edge
}

void Worker::Submit() {
  MutexLock lock(mu_);
}

void Worker::Drain() {
  {
    MutexLock lock(mu_);
  }
  COMMSIG_COUNTER_ADD("fixture/drained", 1);  // lock released first
}

}  // namespace commsig
