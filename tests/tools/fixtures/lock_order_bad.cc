// Analyzer fixture: a lock acquisition cycle through the metrics macros —
// the exact shape of the historical ThreadPool -> MetricsRegistry deadlock.
// Registry::Poll holds Registry::mutex_ and submits to the worker, which
// acquires Worker::mu_; Worker::Drain holds Worker::mu_ and bumps a
// counter, which acquires MetricsRegistry::mutex_ behind the macro.
// Parsed by tests/tools/analyzer_test.py; never built.

#include "common/mutex.h"
#include "obs/obs.h"

namespace commsig {

class Worker {
 public:
  void Submit() COMMSIG_EXCLUDES(mu_);
  void Drain();

 private:
  mutable Mutex mu_;
};

class MetricsRegistry {
 public:
  void Poll(Worker& w);

 private:
  mutable Mutex mutex_;
};

void MetricsRegistry::Poll(Worker& w) {
  MutexLock lock(mutex_);
  w.Submit();  // MetricsRegistry::mutex_ -> Worker::mu_
}

void Worker::Submit() {
  MutexLock lock(mu_);
}

void Worker::Drain() {
  MutexLock lock(mu_);
  // Worker::mu_ -> MetricsRegistry::mutex_: closes the cycle.
  COMMSIG_COUNTER_ADD("fixture/drained", 1);
}

}  // namespace commsig
