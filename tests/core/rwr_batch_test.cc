#include "core/rwr_batch.h"

#include <cmath>
#include <numeric>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "core/rwr.h"
#include "data/flow_generator.h"
#include "graph/graph_builder.h"

namespace commsig {
namespace {

// Random sparse digraph with guaranteed dangling sinks and one isolated
// node, so batches always cross the walkable/dangling partition.
CommGraph RandomGraph(size_t n, double edge_prob, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_real_distribution<double> weight(0.5, 10.0);
  GraphBuilder b(n);
  for (NodeId src = 0; src + 2 < n; ++src) {
    for (NodeId dst = 0; dst < n - 2; ++dst) {
      if (src == dst) continue;
      if (coin(rng) < edge_prob) b.AddEdge(src, dst, weight(rng));
    }
    // Every non-sink node also points at the sink, so directed walks hit a
    // dangling node quickly.
    if (coin(rng) < 0.5) b.AddEdge(src, n - 2, weight(rng));
  }
  // n-2 is a pure sink (dangling under directed traversal); n-1 is isolated
  // (dangling under both traversals).
  return std::move(b).Build();
}

std::vector<NodeId> AllNodes(const CommGraph& g) {
  std::vector<NodeId> nodes(g.NumNodes());
  std::iota(nodes.begin(), nodes.end(), 0);
  return nodes;
}

TEST(TransitionCacheTest, NormsAndPartitionMatchGraph) {
  CommGraph g = RandomGraph(24, 0.2, 11);
  for (TraversalMode mode :
       {TraversalMode::kDirected, TraversalMode::kSymmetric}) {
    TransitionCache cache(g, mode);
    ASSERT_EQ(cache.num_nodes(), g.NumNodes());
    size_t walkable = 0;
    for (NodeId x = 0; x < g.NumNodes(); ++x) {
      const double expected =
          g.OutWeight(x) +
          (mode == TraversalMode::kSymmetric ? g.InWeight(x) : 0.0);
      EXPECT_EQ(cache.norm(x), expected);
      EXPECT_EQ(cache.walkable(x), expected > 0.0);
      walkable += expected > 0.0 ? 1 : 0;
    }
    EXPECT_EQ(cache.num_walkable(), walkable);
    EXPECT_EQ(cache.num_dangling(), g.NumNodes() - walkable);
  }
  // The isolated node is dangling in every mode.
  TransitionCache sym(g, TraversalMode::kSymmetric);
  EXPECT_FALSE(sym.walkable(g.NumNodes() - 1));
  EXPECT_GT(sym.num_dangling(), 0u);
}

// RWR^h: the batched engine must reproduce the serial power iteration
// bit-for-bit across traversal modes, reset strengths, hop depths, and
// dangling structure.
TEST(RwrBatchTest, TruncatedWalksBitIdenticalToSerial) {
  CommGraph g = RandomGraph(30, 0.15, 7);
  std::vector<NodeId> sources = AllNodes(g);
  for (TraversalMode mode :
       {TraversalMode::kDirected, TraversalMode::kSymmetric}) {
    for (double c : {0.0, 0.1, 0.5}) {
      for (size_t h : {1u, 2u, 4u}) {
        RwrOptions opts{.reset = c, .max_hops = h, .traversal = mode};
        RwrScheme scheme({.k = 10}, opts);
        TransitionCache cache(g, mode);
        RwrBatchEngine engine(opts, cache);
        auto solves = engine.SolveBatch(sources);
        ASSERT_EQ(solves.size(), sources.size());
        for (size_t i = 0; i < sources.size(); ++i) {
          auto serial = scheme.Solve(g, sources[i]);
          SCOPED_TRACE(testing::Message()
                       << "mode=" << static_cast<int>(mode) << " c=" << c
                       << " h=" << h << " v=" << sources[i]);
          EXPECT_TRUE(solves[i].converged);
          EXPECT_EQ(solves[i].iterations, serial.iterations);
          ASSERT_EQ(solves[i].probabilities.size(),
                    serial.probabilities.size());
          for (size_t u = 0; u < serial.probabilities.size(); ++u) {
            // Exact: same additions in the same order.
            EXPECT_EQ(solves[i].probabilities[u], serial.probabilities[u]);
          }
        }
      }
    }
  }
}

TEST(RwrBatchTest, BatchWidthDoesNotChangeResults) {
  CommGraph g = RandomGraph(20, 0.2, 3);
  std::vector<NodeId> sources = AllNodes(g);
  RwrOptions opts{.reset = 0.1, .max_hops = 3,
                  .traversal = TraversalMode::kSymmetric};
  TransitionCache cache(g, opts.traversal);
  RwrBatchEngine engine(opts, cache);
  auto whole = engine.SolveBatch(sources);
  for (size_t width : {size_t{1}, size_t{3}, sources.size()}) {
    for (size_t begin = 0; begin < sources.size(); begin += width) {
      const size_t count = std::min(width, sources.size() - begin);
      auto part = engine.SolveBatch(
          std::span<const NodeId>(sources).subspan(begin, count));
      for (size_t b = 0; b < count; ++b) {
        for (size_t u = 0; u < g.NumNodes(); ++u) {
          EXPECT_EQ(part[b].probabilities[u],
                    whole[begin + b].probabilities[u])
              << "width=" << width << " v=" << sources[begin + b];
        }
      }
    }
  }
}

TEST(RwrBatchTest, DuplicateSourcesGetIdenticalColumns) {
  CommGraph g = RandomGraph(16, 0.25, 5);
  RwrOptions opts{.reset = 0.2, .max_hops = 3};
  TransitionCache cache(g, opts.traversal);
  RwrBatchEngine engine(opts, cache);
  std::vector<NodeId> sources = {4, 7, 4, 4, 7};
  auto solves = engine.SolveBatch(sources);
  for (size_t u = 0; u < g.NumNodes(); ++u) {
    EXPECT_EQ(solves[0].probabilities[u], solves[2].probabilities[u]);
    EXPECT_EQ(solves[0].probabilities[u], solves[3].probabilities[u]);
    EXPECT_EQ(solves[1].probabilities[u], solves[4].probabilities[u]);
  }
}

TEST(RwrBatchTest, UnboundedWalksMatchSerialWithinTolerance) {
  CommGraph g = RandomGraph(24, 0.2, 19);
  std::vector<NodeId> sources = AllNodes(g);
  for (double c : {0.1, 0.5}) {
    RwrOptions opts{.reset = c, .max_hops = 0,
                    .traversal = TraversalMode::kSymmetric};
    RwrScheme scheme({.k = 10}, opts);
    TransitionCache cache(g, opts.traversal);
    RwrBatchEngine engine(opts, cache);
    auto solves = engine.SolveBatch(sources);
    for (size_t i = 0; i < sources.size(); ++i) {
      auto serial = scheme.Solve(g, sources[i]);
      SCOPED_TRACE(testing::Message() << "c=" << c << " v=" << sources[i]);
      EXPECT_EQ(solves[i].converged, serial.converged);
      EXPECT_EQ(solves[i].iterations, serial.iterations);
      double sum = 0.0;
      for (size_t u = 0; u < g.NumNodes(); ++u) {
        EXPECT_NEAR(solves[i].probabilities[u], serial.probabilities[u],
                    1e-12);
        sum += solves[i].probabilities[u];
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

// A large sparse graph with a shallow hop bound keeps the frontier far
// below the dense-switch threshold, exercising the sparse iteration path
// end to end.
TEST(RwrBatchTest, FrontierSparsePathMatchesSerial) {
  CommGraph g = RandomGraph(600, 0.005, 23);
  RwrOptions opts{.reset = 0.1, .max_hops = 2,
                  .traversal = TraversalMode::kSymmetric};
  RwrScheme scheme({.k = 10}, opts);
  TransitionCache cache(g, opts.traversal);
  RwrBatchEngine engine(opts, cache);
  std::vector<NodeId> sources = {0, 17, 300, 599};
  auto solves = engine.SolveBatch(sources);
  for (size_t i = 0; i < sources.size(); ++i) {
    auto serial = scheme.Solve(g, sources[i]);
    for (size_t u = 0; u < g.NumNodes(); ++u) {
      EXPECT_EQ(solves[i].probabilities[u], serial.probabilities[u])
          << "v=" << sources[i] << " u=" << u;
    }
  }
}

TEST(RwrBatchTest, DanglingMassReturnsToStartInBatch) {
  // 0 -> 1 with 1 a sink: all walked mass must cycle back through the
  // start for every column, preserving total probability 1.
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  CommGraph g = std::move(b).Build();
  RwrOptions opts{.reset = 0.3, .max_hops = 0,
                  .traversal = TraversalMode::kDirected};
  TransitionCache cache(g, opts.traversal);
  RwrBatchEngine engine(opts, cache);
  std::vector<NodeId> sources = {0, 1};
  auto solves = engine.SolveBatch(sources);
  for (const auto& s : solves) {
    EXPECT_TRUE(s.converged);
    EXPECT_NEAR(s.probabilities[0] + s.probabilities[1], 1.0, 1e-9);
  }
  EXPECT_GT(solves[0].probabilities[0], solves[0].probabilities[1]);
  // Column rooted at the sink: mass never leaves node 1.
  EXPECT_NEAR(solves[1].probabilities[1], 1.0, 1e-9);
}

TEST(RwrBatchTest, EmptyBatchAndEmptyComputeAll) {
  CommGraph g = RandomGraph(8, 0.3, 2);
  RwrOptions opts{.reset = 0.1, .max_hops = 3};
  TransitionCache cache(g, opts.traversal);
  RwrBatchEngine engine(opts, cache);
  EXPECT_TRUE(engine.SolveBatch({}).empty());
  RwrScheme scheme({.k = 5}, opts);
  EXPECT_TRUE(scheme.ComputeAll(g, {}).empty());
}

TEST(RwrBatchTest, FallbackLadderMatchesSerialCompute) {
  CommGraph g = RandomGraph(30, 0.15, 13);
  // max_iterations far below what the tolerance needs: every unbounded walk
  // fails to converge and both paths must take the RWR^h fallback.
  RwrOptions opts{.reset = 0.1,
                  .max_hops = 0,
                  .tolerance = 1e-12,
                  .max_iterations = 3,
                  .fallback_hops = 2,
                  .traversal = TraversalMode::kSymmetric};
  RwrScheme scheme({.k = 10}, opts);
  std::vector<NodeId> nodes = AllNodes(g);
  auto batched = scheme.ComputeAll(g, nodes);
  ASSERT_EQ(batched.size(), nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    // The fallback runs a truncated walk, so equality is exact.
    EXPECT_EQ(batched[i], scheme.Compute(g, nodes[i])) << "v=" << nodes[i];
  }
}

TEST(RwrBatchTest, UnconvergedWithoutFallbackKeepsRawVector) {
  CommGraph g = RandomGraph(20, 0.2, 29);
  RwrOptions opts{.reset = 0.1,
                  .max_hops = 0,
                  .tolerance = 1e-12,
                  .max_iterations = 4,
                  .fallback_hops = 0,  // ladder disabled
                  .traversal = TraversalMode::kSymmetric};
  RwrScheme scheme({.k = 10}, opts);
  std::vector<NodeId> nodes = AllNodes(g);
  auto batched = scheme.ComputeAll(g, nodes);
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(batched[i], scheme.Compute(g, nodes[i])) << "v=" << nodes[i];
  }
}

TEST(RwrBatchTest, ComputeAllMatchesPerNodeComputeOnFlowData) {
  FlowGeneratorConfig cfg;
  cfg.num_local_hosts = 40;
  cfg.num_external_hosts = 500;
  cfg.num_windows = 1;
  cfg.seed = 77;
  FlowDataset ds = FlowTraceGenerator(cfg).Generate();
  CommGraph g = ds.Windows()[0];
  for (const char* spec :
       {"rwr(c=0.1,h=3)", "rwr(c=0.5,h=1)", "rwr(c=0.1)"}) {
    auto scheme = CreateScheme(
        spec, {.k = 10, .restrict_to_opposite_partition = true});
    ASSERT_TRUE(scheme.ok()) << spec;
    auto batched = (*scheme)->ComputeAll(g, ds.local_hosts);
    ASSERT_EQ(batched.size(), ds.local_hosts.size());
    for (size_t i = 0; i < ds.local_hosts.size(); ++i) {
      EXPECT_EQ(batched[i], (*scheme)->Compute(g, ds.local_hosts[i]))
          << spec << " host " << i;
    }
  }
}

TEST(RwrBatchTest, SerialSolveWithSharedCacheMatchesFreshCache) {
  CommGraph g = RandomGraph(25, 0.2, 31);
  RwrOptions opts{.reset = 0.1, .max_hops = 0,
                  .traversal = TraversalMode::kSymmetric};
  RwrScheme scheme({.k = 10}, opts);
  TransitionCache cache(g, opts.traversal);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    auto fresh = scheme.Solve(g, v);
    auto shared = scheme.Solve(g, v, cache);
    EXPECT_EQ(shared.converged, fresh.converged);
    EXPECT_EQ(shared.iterations, fresh.iterations);
    for (size_t u = 0; u < g.NumNodes(); ++u) {
      EXPECT_EQ(shared.probabilities[u], fresh.probabilities[u]);
    }
  }
}

TEST(RwrBatchTest, ComputeAllParallelMatchesBatchedSerial) {
  FlowGeneratorConfig cfg;
  cfg.num_local_hosts = 37;  // not a multiple of the batch width
  cfg.num_external_hosts = 400;
  cfg.num_windows = 1;
  cfg.seed = 9;
  FlowDataset ds = FlowTraceGenerator(cfg).Generate();
  CommGraph g = ds.Windows()[0];
  ThreadPool pool(4);
  RwrScheme scheme({.k = 10}, {.reset = 0.1, .max_hops = 3});
  auto serial = scheme.ComputeAll(g, ds.local_hosts);
  auto parallel = ComputeAllParallel(scheme, g, ds.local_hosts, pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "host " << i;
  }
}

}  // namespace
}  // namespace commsig
