#include "core/incremental.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>
#include <vector>

#include "core/rwr_push.h"
#include "core/scheme.h"
#include "graph/windower.h"
#include "robust/fault_injector.h"

namespace commsig {
namespace {

constexpr size_t kNumNodes = 60;
constexpr uint64_t kWindowLength = 8;
constexpr uint64_t kStride = 2;  // 75% overlap

/// Bursty synthetic stream over a fixed universe: a stable always-on core
/// plus per-node random bursts, the regime sliding windows monitor.
std::vector<TraceEvent> BurstyEvents(uint64_t seed, uint64_t num_slots = 40) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<TraceEvent> events;
  for (uint64_t t = 0; t < num_slots; ++t) {
    for (NodeId v = 0; v < 10; ++v) {
      events.push_back({v, static_cast<NodeId>(10 + v % 7), t, 1.0});
      if (uniform(rng) < 0.15) {
        NodeId d = static_cast<NodeId>(rng() % kNumNodes);
        if (d != v) events.push_back({v, d, t, 1.0 + uniform(rng)});
      }
    }
  }
  return events;
}

std::vector<CommGraph> SlidingWindows(const std::vector<TraceEvent>& events) {
  TraceWindower w(kNumNodes, kWindowLength);
  return w.SplitSliding(events, kStride);
}

std::vector<NodeId> AllFocal() {
  std::vector<NodeId> focal(kNumNodes);
  for (NodeId v = 0; v < kNumNodes; ++v) focal[v] = v;
  return focal;
}

double MaxWeightDeviation(const std::vector<Signature>& a,
                          const std::vector<Signature>& b) {
  EXPECT_EQ(a.size(), b.size());
  double max_dev = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return 1e300;
    for (size_t e = 0; e < a[i].size(); ++e) {
      if (a[i].entries()[e].node != b[i].entries()[e].node) return 1e300;
      max_dev = std::max(max_dev, std::abs(a[i].entries()[e].weight -
                                           b[i].entries()[e].weight));
    }
  }
  return max_dev;
}

TEST(IncrementalEngineTest, TopTalkersMatchesScratchBitForBit) {
  auto scheme = MakeTopTalkers({.k = 5});
  auto windows = SlidingWindows(BurstyEvents(11));
  auto focal = AllFocal();
  ASSERT_GT(windows.size(), 3u);
  IncrementalSignatureEngine engine(*scheme, focal);
  for (const CommGraph& g : windows) {
    const auto& incr = engine.AdvanceBorrowed(g);
    auto scratch = scheme->ComputeAll(g, focal);
    EXPECT_EQ(incr, scratch);
  }
}

TEST(IncrementalEngineTest, UnexpectedTalkersMatchesScratchBitForBit) {
  auto scheme = MakeUnexpectedTalkers({.k = 5});
  auto windows = SlidingWindows(BurstyEvents(12));
  auto focal = AllFocal();
  IncrementalSignatureEngine engine(*scheme, focal);
  for (const CommGraph& g : windows) {
    const auto& incr = engine.AdvanceBorrowed(g);
    auto scratch = scheme->ComputeAll(g, focal);
    EXPECT_EQ(incr, scratch);
  }
}

TEST(IncrementalEngineTest, RwrStaysWithinDocumentedEpsilon) {
  // The reuse bound admits deviations up to incremental_max_drift plus
  // solver tolerance on either side; 1e-5 comfortably covers the 1e-6
  // default bound and is far below any signature-level decision threshold.
  for (size_t max_hops : {size_t{0}, size_t{3}}) {
    RwrOptions rwr;
    rwr.max_hops = max_hops;
    auto scheme = MakeRwr({.k = 5}, rwr);
    auto windows = SlidingWindows(BurstyEvents(13));
    auto focal = AllFocal();
    IncrementalSignatureEngine engine(*scheme, focal);
    for (const CommGraph& g : windows) {
      const auto& incr = engine.AdvanceBorrowed(g);
      auto scratch = scheme->ComputeAll(g, focal);
      EXPECT_LE(MaxWeightDeviation(incr, scratch), 1e-5)
          << "h=" << max_hops;
    }
  }
}

TEST(IncrementalEngineTest, RwrPushMatchesScratch) {
  // RwrPush's incremental override recomputes dirty nodes with its own
  // solver; results must equal its from-scratch sweep exactly.
  auto scheme = MakeRwrPush({.k = 5}, {});
  auto windows = SlidingWindows(BurstyEvents(14));
  auto focal = AllFocal();
  IncrementalSignatureEngine engine(*scheme, focal);
  for (const CommGraph& g : windows) {
    const auto& incr = engine.AdvanceBorrowed(g);
    auto scratch = scheme->ComputeAll(g, focal);
    EXPECT_EQ(incr, scratch);
  }
}

TEST(IncrementalEngineTest, OwningAndBorrowedAdvanceAgree) {
  auto scheme = MakeTopTalkers({.k = 4});
  auto windows = SlidingWindows(BurstyEvents(15));
  auto focal = AllFocal();
  IncrementalSignatureEngine borrowed(*scheme, focal);
  IncrementalSignatureEngine owning(*scheme, focal);
  for (size_t w = 0; w < windows.size(); ++w) {
    const auto& a = borrowed.AdvanceBorrowed(windows[w]);
    // Mix the two forms on the owning engine to exercise the hand-over.
    const auto& b = (w % 2 == 0) ? owning.Advance(windows[w])
                                 : owning.AdvanceBorrowed(windows[w]);
    EXPECT_EQ(a, b);
  }
}

TEST(IncrementalEngineTest, RebuildMidSequenceIsDeterministic) {
  // Checkpoint/restore drops the engine's carried state by design: a
  // restored pipeline rebuilds the engine and re-primes. For exact schemes
  // the rebuilt timeline must equal the continuous one bit-for-bit.
  auto scheme = MakeUnexpectedTalkers({.k = 5});
  auto windows = SlidingWindows(BurstyEvents(16));
  auto focal = AllFocal();
  ASSERT_GT(windows.size(), 6u);
  const size_t restore_at = windows.size() / 2;

  IncrementalSignatureEngine continuous(*scheme, focal);
  std::vector<std::vector<Signature>> full;
  for (const CommGraph& g : windows) full.push_back(continuous.AdvanceBorrowed(g));

  IncrementalSignatureEngine restored(*scheme, focal);
  for (size_t w = 0; w < restore_at; ++w) restored.AdvanceBorrowed(windows[w]);
  restored.Reset();  // the restore point: all carried state gone
  EXPECT_EQ(restored.windows_advanced(), 0u);
  for (size_t w = restore_at; w < windows.size(); ++w) {
    EXPECT_EQ(restored.AdvanceBorrowed(windows[w]), full[w]);
  }
}

TEST(IncrementalEngineTest, FaultPerturbedStreamStaysEquivalent) {
  // Dropped / duplicated / corrupted events change *what* the windows hold,
  // never the incremental-vs-scratch contract: whatever graphs come out of
  // the (fault-filtering) windower, both paths must agree on them.
  FaultInjector::Options fopts;
  fopts.seed = 99;
  fopts.p_drop = 0.05;
  fopts.p_duplicate = 0.05;
  fopts.p_corrupt_weight = 0.03;
  fopts.p_corrupt_time = 0.03;
  FaultInjector injector(fopts);
  auto perturbed = injector.PerturbEvents(BurstyEvents(17));
  EXPECT_GT(injector.report().Total(), 0u);

  auto windows = SlidingWindows(perturbed);
  auto focal = AllFocal();
  for (const char* spec : {"tt", "ut"}) {
    auto scheme = CreateScheme(spec, {.k = 5});
    ASSERT_TRUE(scheme.ok());
    IncrementalSignatureEngine engine(**scheme, focal);
    for (const CommGraph& g : windows) {
      EXPECT_EQ(engine.AdvanceBorrowed(g), (*scheme)->ComputeAll(g, focal));
    }
  }
}

TEST(IncrementalEngineTest, EmptyFocalPopulation) {
  auto scheme = MakeTopTalkers({.k = 3});
  auto windows = SlidingWindows(BurstyEvents(18));
  IncrementalSignatureEngine engine(*scheme, {});
  for (const CommGraph& g : windows) {
    EXPECT_TRUE(engine.AdvanceBorrowed(g).empty());
  }
  EXPECT_EQ(engine.windows_advanced(), windows.size());
}

TEST(IncrementalEngineTest, SignatureAccessorTracksLatestWindow) {
  auto scheme = MakeTopTalkers({.k = 3});
  auto windows = SlidingWindows(BurstyEvents(19));
  auto focal = AllFocal();
  IncrementalSignatureEngine engine(*scheme, focal);
  EXPECT_TRUE(engine.signatures().empty());
  for (const CommGraph& g : windows) engine.AdvanceBorrowed(g);
  EXPECT_EQ(engine.signatures(),
            scheme->ComputeAll(windows.back(), focal));
}

/// Scripts the engine's budget clock: each Advance takes two readings
/// (begin, end), so pushing `elapsed` queues one advance's wall time.
class ScriptedClock {
 public:
  explicit ScriptedClock(IncrementalSignatureEngine& engine) {
    engine.SetClockForTest([this]() {
      EXPECT_LT(next_, readings_.size()) << "unscripted clock reading";
      return next_ < readings_.size() ? readings_[next_++] : 0;
    });
  }
  void PushAdvance(uint64_t elapsed_us) {
    const uint64_t begin =
        readings_.empty() ? 0 : readings_.back() + 1;
    readings_.push_back(begin);
    readings_.push_back(begin + elapsed_us);
  }

 private:
  std::vector<uint64_t> readings_;
  size_t next_ = 0;
};

TEST(IncrementalEngineTest, OverBudgetStreakDropsWarmStateAndPrimes) {
  auto scheme = MakeTopTalkers({.k = 5});
  auto windows = SlidingWindows(BurstyEvents(23));
  auto focal = AllFocal();
  ASSERT_GE(windows.size(), 5u);
  IncrementalSignatureEngine engine(*scheme, focal);
  engine.SetOverBudgetPolicy(/*budget_us=*/100, /*strikes=*/2);
  ScriptedClock clock(engine);

  // Two consecutive blown budgets exhaust the streak and drop the warm
  // state; the third window primes from scratch; the fourth strikes once
  // but the fifth, back in budget, clears the streak.
  const uint64_t elapsed[] = {1000, 1000, 50, 1000, 50};
  for (size_t i = 0; i < 5; ++i) {
    clock.PushAdvance(elapsed[i]);
    const auto& incr = engine.AdvanceBorrowed(windows[i]);
    // Self-healing must not cost correctness: every window — striking,
    // freshly primed, or healthy — still matches scratch bit-for-bit.
    EXPECT_EQ(incr, scheme->ComputeAll(windows[i], focal)) << "window " << i;
  }
  EXPECT_EQ(engine.budget_strikes(), 3u);
  EXPECT_EQ(engine.scratch_rebuilds(), 1u);
}

TEST(IncrementalEngineTest, NonConsecutiveStrikesNeverRebuild) {
  auto scheme = MakeTopTalkers({.k = 5});
  auto windows = SlidingWindows(BurstyEvents(29));
  auto focal = AllFocal();
  ASSERT_GE(windows.size(), 6u);
  IncrementalSignatureEngine engine(*scheme, focal);
  engine.SetOverBudgetPolicy(/*budget_us=*/100, /*strikes=*/2);
  ScriptedClock clock(engine);
  for (size_t i = 0; i < 6; ++i) {
    clock.PushAdvance(i % 2 == 0 ? 1000 : 50);  // over, under, over, ...
    engine.AdvanceBorrowed(windows[i]);
  }
  EXPECT_EQ(engine.budget_strikes(), 3u);
  EXPECT_EQ(engine.scratch_rebuilds(), 0u);  // streak never reaches 2
}

TEST(IncrementalEngineTest, ZeroBudgetDisablesThePolicy) {
  auto scheme = MakeTopTalkers({.k = 5});
  auto windows = SlidingWindows(BurstyEvents(31));
  auto focal = AllFocal();
  IncrementalSignatureEngine engine(*scheme, focal);
  engine.SetOverBudgetPolicy(/*budget_us=*/0);
  for (const CommGraph& g : windows) engine.AdvanceBorrowed(g);
  EXPECT_EQ(engine.budget_strikes(), 0u);
  EXPECT_EQ(engine.scratch_rebuilds(), 0u);
}

}  // namespace
}  // namespace commsig
