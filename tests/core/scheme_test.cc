#include "core/scheme.h"

#include <gtest/gtest.h>

#include "core/rwr.h"
#include "graph/graph_builder.h"

namespace commsig {
namespace {

TEST(SchemeTablesTest, TableIHasThreeApplications) {
  auto table = ApplicationRequirements();
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table[0].application, "multiusage-detection");
  EXPECT_EQ(table[0].persistence, Requirement::kLow);
  EXPECT_EQ(table[0].uniqueness, Requirement::kHigh);
  EXPECT_EQ(table[0].robustness, Requirement::kHigh);
}

TEST(SchemeTablesTest, TableIMasqueradingRow) {
  auto table = ApplicationRequirements();
  EXPECT_EQ(table[1].application, "label-masquerading");
  EXPECT_EQ(table[1].persistence, Requirement::kHigh);
  EXPECT_EQ(table[1].robustness, Requirement::kMedium);
}

TEST(SchemeTablesTest, TableIAnomalyRow) {
  auto table = ApplicationRequirements();
  EXPECT_EQ(table[2].application, "anomaly-detection");
  EXPECT_EQ(table[2].uniqueness, Requirement::kLow);
}

TEST(SchemeTablesTest, TableIICoversAllCharacteristics) {
  const auto& links = CharacteristicLinks();
  ASSERT_EQ(links.size(), 4u);
  // Engagement -> persistence, robustness.
  EXPECT_EQ(links[0].characteristic, GraphCharacteristic::kEngagement);
  EXPECT_EQ(links[0].properties.size(), 2u);
  // Novelty -> uniqueness only.
  EXPECT_EQ(links[1].characteristic, GraphCharacteristic::kNovelty);
  ASSERT_EQ(links[1].properties.size(), 1u);
  EXPECT_EQ(links[1].properties[0], SignatureProperty::kUniqueness);
}

TEST(CreateSchemeTest, CreatesTopTalkers) {
  auto scheme = CreateScheme("tt", {.k = 5});
  ASSERT_TRUE(scheme.ok());
  EXPECT_EQ((*scheme)->name(), "tt");
  EXPECT_EQ((*scheme)->options().k, 5u);
}

TEST(CreateSchemeTest, CreatesUnexpectedTalkers) {
  auto scheme = CreateScheme("ut", {.k = 5});
  ASSERT_TRUE(scheme.ok());
  EXPECT_EQ((*scheme)->name(), "ut");
}

TEST(CreateSchemeTest, CreatesTfIdfVariant) {
  auto scheme = CreateScheme("ut-tfidf", {.k = 5});
  ASSERT_TRUE(scheme.ok());
  EXPECT_EQ((*scheme)->name(), "ut-tfidf");
}

TEST(CreateSchemeTest, CreatesDefaultRwr) {
  auto scheme = CreateScheme("rwr", {.k = 5});
  ASSERT_TRUE(scheme.ok());
  auto* rwr = dynamic_cast<RwrScheme*>(scheme->get());
  ASSERT_NE(rwr, nullptr);
  EXPECT_DOUBLE_EQ(rwr->rwr_options().reset, 0.1);
  EXPECT_EQ(rwr->rwr_options().max_hops, 0u);
}

TEST(CreateSchemeTest, ParsesRwrParameters) {
  auto scheme = CreateScheme("rwr(c=0.25,h=3)", {.k = 5});
  ASSERT_TRUE(scheme.ok()) << scheme.status().ToString();
  auto* rwr = dynamic_cast<RwrScheme*>(scheme->get());
  ASSERT_NE(rwr, nullptr);
  EXPECT_DOUBLE_EQ(rwr->rwr_options().reset, 0.25);
  EXPECT_EQ(rwr->rwr_options().max_hops, 3u);
}

TEST(CreateSchemeTest, ParsesTraversalMode) {
  auto scheme = CreateScheme("rwr(c=0.1,h=1,mode=directed)", {.k = 5});
  ASSERT_TRUE(scheme.ok()) << scheme.status().ToString();
  auto* rwr = dynamic_cast<RwrScheme*>(scheme->get());
  ASSERT_NE(rwr, nullptr);
  EXPECT_EQ(rwr->rwr_options().traversal, TraversalMode::kDirected);
}

TEST(CreateSchemeTest, ParsesRwrPush) {
  auto scheme = CreateScheme("rwr-push(c=0.2,eps=1e-5)", {.k = 5});
  ASSERT_TRUE(scheme.ok()) << scheme.status().ToString();
  EXPECT_EQ((*scheme)->name(), "rwr-push(c=0.2,eps=1e-05)");
}

TEST(CreateSchemeTest, RejectsMalformedRwrPush) {
  EXPECT_FALSE(CreateScheme("rwr-push(c=0)", {}).ok());
  EXPECT_FALSE(CreateScheme("rwr-push(eps=-1)", {}).ok());
  EXPECT_FALSE(CreateScheme("rwr-push(zz=1)", {}).ok());
}

TEST(CreateSchemeTest, RejectsUnknownScheme) {
  EXPECT_FALSE(CreateScheme("pagerank", {}).ok());
}

TEST(CreateSchemeTest, RejectsMalformedRwrSpecs) {
  EXPECT_FALSE(CreateScheme("rwr(c=0.1", {}).ok());
  EXPECT_FALSE(CreateScheme("rwr(c=abc)", {}).ok());
  EXPECT_FALSE(CreateScheme("rwr(x=1)", {}).ok());
  EXPECT_FALSE(CreateScheme("rwr(c=1.5)", {}).ok());  // reset out of range
  EXPECT_FALSE(CreateScheme("rwr(mode=sideways)", {}).ok());
}

TEST(CreateSchemeTest, RoundTripsNames) {
  for (const char* spec : {"tt", "ut", "ut-tfidf"}) {
    auto scheme = CreateScheme(spec, {.k = 3});
    ASSERT_TRUE(scheme.ok());
    EXPECT_EQ((*scheme)->name(), spec);
  }
}

TEST(SchemeOptionsTest, OptionsArePropagated) {
  auto scheme = CreateScheme("tt", {.k = 7, .restrict_to_opposite_partition = true});
  ASSERT_TRUE(scheme.ok());
  EXPECT_EQ((*scheme)->options().k, 7u);
  EXPECT_TRUE((*scheme)->options().restrict_to_opposite_partition);
}

}  // namespace
}  // namespace commsig
