#include "core/unexpected_talkers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace commsig {
namespace {

CommGraph MakePopularityGraph() {
  // Node 9 is a universally popular destination (in-degree 4); node 8 is a
  // niche destination only node 0 talks to.
  GraphBuilder b(10);
  for (NodeId host = 0; host < 4; ++host) b.AddEdge(host, 9, 10.0);
  b.AddEdge(0, 8, 4.0);
  return std::move(b).Build();
}

TEST(UnexpectedTalkersTest, DownweightsPopularDestinations) {
  CommGraph g = MakePopularityGraph();
  UnexpectedTalkersScheme ut({.k = 2}, UtWeighting::kInverseInDegree);
  Signature sig = ut.Compute(g, 0);
  // w(9) = 10/4 = 2.5; w(8) = 4/1 = 4 — the niche node outranks the
  // popular one despite lower raw volume.
  EXPECT_DOUBLE_EQ(sig.WeightOf(9), 2.5);
  EXPECT_DOUBLE_EQ(sig.WeightOf(8), 4.0);
}

TEST(UnexpectedTalkersTest, TopTalkersWouldRankOppositely) {
  CommGraph g = MakePopularityGraph();
  UnexpectedTalkersScheme ut({.k = 1}, UtWeighting::kInverseInDegree);
  Signature sig = ut.Compute(g, 0);
  ASSERT_EQ(sig.size(), 1u);
  EXPECT_TRUE(sig.Contains(8));  // UT keeps the niche destination
}

TEST(UnexpectedTalkersTest, TfIdfWeighting) {
  CommGraph g = MakePopularityGraph();
  UnexpectedTalkersScheme ut({.k = 2}, UtWeighting::kTfIdf);
  Signature sig = ut.Compute(g, 0);
  // |V| = 10: w(9) = 10·log(10/4); w(8) = 4·log(10/1).
  EXPECT_NEAR(sig.WeightOf(9), 10.0 * std::log(10.0 / 4.0), 1e-12);
  EXPECT_NEAR(sig.WeightOf(8), 4.0 * std::log(10.0), 1e-12);
}

TEST(UnexpectedTalkersTest, NamesReflectWeighting) {
  UnexpectedTalkersScheme a({.k = 1}, UtWeighting::kInverseInDegree);
  UnexpectedTalkersScheme b({.k = 1}, UtWeighting::kTfIdf);
  EXPECT_EQ(a.name(), "ut");
  EXPECT_EQ(b.name(), "ut-tfidf");
}

TEST(UnexpectedTalkersTest, EmptyForIsolatedNode) {
  CommGraph g = MakePopularityGraph();
  UnexpectedTalkersScheme ut({.k = 3}, UtWeighting::kInverseInDegree);
  EXPECT_TRUE(ut.Compute(g, 5).empty());
}

TEST(UnexpectedTalkersTest, ExcludesSelf) {
  GraphBuilder b(2);
  b.AddEdge(0, 0, 5.0);
  b.AddEdge(0, 1, 1.0);
  CommGraph g = std::move(b).Build();
  UnexpectedTalkersScheme ut({.k = 5}, UtWeighting::kInverseInDegree);
  Signature sig = ut.Compute(g, 0);
  EXPECT_FALSE(sig.Contains(0));
  EXPECT_TRUE(sig.Contains(1));
}

TEST(UnexpectedTalkersTest, TraitsMatchTableIII) {
  UnexpectedTalkersScheme ut({.k = 1}, UtWeighting::kInverseInDegree);
  auto traits = ut.traits();
  ASSERT_EQ(traits.properties.size(), 1u);
  EXPECT_EQ(traits.properties[0], SignatureProperty::kUniqueness);
}

TEST(UnexpectedTalkersTest, EqualInDegreesReduceToVolumeRanking) {
  // When all destinations have in-degree 1, UT ranks like raw volume.
  GraphBuilder b(4);
  b.AddEdge(0, 1, 3.0);
  b.AddEdge(0, 2, 2.0);
  b.AddEdge(0, 3, 1.0);
  CommGraph g = std::move(b).Build();
  UnexpectedTalkersScheme ut({.k = 2}, UtWeighting::kInverseInDegree);
  Signature sig = ut.Compute(g, 0);
  EXPECT_TRUE(sig.Contains(1));
  EXPECT_TRUE(sig.Contains(2));
  EXPECT_FALSE(sig.Contains(3));
}

}  // namespace
}  // namespace commsig
