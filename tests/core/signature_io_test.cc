#include "core/signature_io.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace commsig {
namespace {

Signature Sig(std::vector<Signature::Entry> entries) {
  return Signature::FromTopK(std::move(entries), 100);
}

class SignatureIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("commsig_sig_io_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(SignatureIoTest, RoundTrip) {
  Interner interner;
  NodeId alice = interner.Intern("alice");
  NodeId bob = interner.Intern("bob");
  NodeId mom = interner.Intern("mom");
  NodeId pizza = interner.Intern("pizza");

  SignatureSet set;
  set.owners = {alice, bob};
  set.signatures = {Sig({{mom, 0.75}, {pizza, 0.25}}), Sig({{mom, 1.0}})};
  ASSERT_TRUE(WriteSignatureSetCsv(set, interner, path_.string()).ok());

  Interner interner2;
  auto loaded = ReadSignatureSetCsv(path_.string(), interner2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(interner2.LabelOf(loaded->owners[0]), "alice");
  EXPECT_EQ(interner2.LabelOf(loaded->owners[1]), "bob");
  EXPECT_DOUBLE_EQ(
      loaded->signatures[0].WeightOf(interner2.Find("mom")), 0.75);
  EXPECT_DOUBLE_EQ(
      loaded->signatures[0].WeightOf(interner2.Find("pizza")), 0.25);
  EXPECT_EQ(loaded->signatures[1].size(), 1u);
}

TEST_F(SignatureIoTest, EmptySignatureRoundTrips) {
  Interner interner;
  NodeId quiet = interner.Intern("quiet-host");
  SignatureSet set;
  set.owners = {quiet};
  set.signatures = {Signature()};
  ASSERT_TRUE(WriteSignatureSetCsv(set, interner, path_.string()).ok());

  Interner interner2;
  auto loaded = ReadSignatureSetCsv(path_.string(), interner2);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_TRUE(loaded->signatures[0].empty());
}

TEST_F(SignatureIoTest, EmptySetRoundTrips) {
  Interner interner;
  ASSERT_TRUE(
      WriteSignatureSetCsv(SignatureSet{}, interner, path_.string()).ok());
  Interner interner2;
  auto loaded = ReadSignatureSetCsv(path_.string(), interner2);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
}

TEST_F(SignatureIoTest, RejectsMismatchedSet) {
  Interner interner;
  SignatureSet set;
  set.owners = {interner.Intern("x")};
  EXPECT_TRUE(WriteSignatureSetCsv(set, interner, path_.string())
                  .IsInvalidArgument());
}

TEST_F(SignatureIoTest, RejectsBadRows) {
  {
    std::ofstream out(path_);
    out << "owner,member\n";
  }
  Interner interner;
  EXPECT_FALSE(ReadSignatureSetCsv(path_.string(), interner).ok());
}

TEST_F(SignatureIoTest, RejectsNonPositiveWeights) {
  {
    std::ofstream out(path_);
    out << "owner,member,-1\n";
  }
  Interner interner;
  EXPECT_FALSE(ReadSignatureSetCsv(path_.string(), interner).ok());
}

TEST_F(SignatureIoTest, ScatteredOwnerRowsAggregate) {
  {
    std::ofstream out(path_);
    out << "a,x,1\nb,y,2\na,z,3\n";
  }
  Interner interner;
  auto loaded = ReadSignatureSetCsv(path_.string(), interner);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  size_t a = loaded->Find(interner.Find("a"));
  ASSERT_NE(a, SIZE_MAX);
  EXPECT_EQ(loaded->signatures[a].size(), 2u);
}

TEST(SignatureSetTest, FindMissingReturnsSentinel) {
  SignatureSet set;
  EXPECT_EQ(set.Find(42), SIZE_MAX);
}

}  // namespace
}  // namespace commsig
