// Scalar-vs-SIMD equivalence suite for the vectorized kernels.
//
// Three contracts are pinned here:
//  1. The packed tiered distance kernels match the single-merge reference
//     (DistanceReference) on randomized signatures across every size/skew/
//     overlap regime — exactly for the count-based kinds, within 1e-12 for
//     the weighted ones (the packed kernels hoist per-signature sums and
//     accumulate 4 lanes at a time, which reorders FP additions).
//  2. Every intersection tier produces the bitwise-identical distance: the
//     tiers emit the same matched-weight sequence in the same order, so
//     forcing any of them must not change a single bit.
//  3. The RWR block kernels are bit-identical with their scalar reference
//     loops: toggling simd::Enabled() must not change any probability bit.
//     (On -DCOMMSIG_SIMD=off builds the toggle is inert and the test
//     degenerates to scalar==scalar, which keeps the suite green in the CI
//     SIMD matrix while the =auto leg exercises the real comparison.)

#include <cmath>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/simd.h"
#include "core/distance.h"
#include "core/rwr.h"
#include "core/rwr_batch.h"
#include "data/flow_generator.h"
#include "graph/graph_builder.h"

namespace commsig {
namespace {

using distance_internal::DistanceWithTier;
using distance_internal::IntersectTier;

// ---------------------------------------------------------------------------
// Randomized signature-pair corpus spanning the tier-selection regimes.
// ---------------------------------------------------------------------------

Signature RandomSig(Rng& rng, size_t n, uint32_t universe) {
  std::vector<Signature::Entry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    entries.push_back({static_cast<NodeId>(rng.UniformInt(universe)),
                       rng.UniformDouble() * 10 + 1e-3});
  }
  return Signature::FromTopK(std::move(entries), n);
}

struct PairCase {
  Signature a;
  Signature b;
};

// Empty/singleton/disjoint/identical specials plus randomized draws over
// (sizes, skew, id density). Duplicated ids arise naturally: RandomSig
// draws with replacement and FromTopK keeps repeats, so the dense draws
// exercise the bitset tier's duplicate fallback too.
std::vector<PairCase> MakeCorpus(uint64_t seed) {
  Rng rng(seed);
  std::vector<PairCase> corpus;

  corpus.push_back({Signature(), Signature()});
  corpus.push_back({Signature(), RandomSig(rng, 5, 100)});
  corpus.push_back({RandomSig(rng, 1, 10), RandomSig(rng, 1, 10)});
  {
    // Structurally disjoint id ranges.
    Signature lo = Signature::FromTopK({{1, 0.3}, {2, 0.7}, {3, 0.1}}, 10);
    Signature hi =
        Signature::FromTopK({{100, 0.4}, {200, 0.6}, {300, 0.2}}, 10);
    corpus.push_back({lo, hi});
  }
  {
    Signature s = RandomSig(rng, 40, 200);
    corpus.push_back({s, s});  // identical
  }

  // (small-size, large-size, universe) sweeps: balanced merges (dense and
  // sparse id ranges), the 1:16 gallop threshold, and deep 1:256 skew.
  struct Shape {
    size_t na, nb;
    uint32_t universe;
  };
  const Shape shapes[] = {
      {8, 8, 40},        {30, 30, 100},     {30, 30, 100000},
      {200, 200, 900},   {200, 200, 500000}, {16, 256, 1200},
      {8, 2048, 10000},  {16, 4096, 20000},  {4096, 16, 20000},
  };
  for (const Shape& s : shapes) {
    for (int rep = 0; rep < 6; ++rep) {
      corpus.push_back(
          {RandomSig(rng, s.na, s.universe), RandomSig(rng, s.nb, s.universe)});
    }
  }
  return corpus;
}

TEST(SimdDistanceTest, PackedMatchesReferenceRandomized) {
  const auto corpus = MakeCorpus(2024);
  for (size_t i = 0; i < corpus.size(); ++i) {
    const auto& [a, b] = corpus[i];
    for (DistanceKind kind : AllDistanceKindsExtended()) {
      const double ref = DistanceReference(kind, a, b);
      const double packed = Distance(kind, a, b);
      if (kind == DistanceKind::kJaccard || kind == DistanceKind::kOverlap) {
        // Count-based kinds divide the same integers: exact.
        EXPECT_DOUBLE_EQ(packed, ref)
            << "pair " << i << " kind " << DistanceName(kind);
      } else {
        EXPECT_NEAR(packed, ref, 1e-12)
            << "pair " << i << " kind " << DistanceName(kind);
      }
      EXPECT_GE(packed, 0.0);
      EXPECT_LE(packed, 1.0);
      // Symmetry of the packed kernels (the tiers swap roles internally
      // when the first signature is the larger one).
      EXPECT_DOUBLE_EQ(packed, Distance(kind, b, a))
          << "pair " << i << " kind " << DistanceName(kind);
    }
  }
}

TEST(SimdDistanceTest, AllTiersBitwiseIdentical) {
  const auto corpus = MakeCorpus(77);
  const IntersectTier tiers[] = {IntersectTier::kMerge,
                                 IntersectTier::kBlockMerge,
                                 IntersectTier::kGallop,
                                 IntersectTier::kBitset};
  for (size_t i = 0; i < corpus.size(); ++i) {
    const auto& [a, b] = corpus[i];
    for (DistanceKind kind : AllDistanceKindsExtended()) {
      const double auto_tier =
          DistanceWithTier(kind, a, b, IntersectTier::kAuto);
      for (IntersectTier tier : tiers) {
        const double forced = DistanceWithTier(kind, a, b, tier);
        // Bitwise, not just ==: every tier must emit the same matched
        // weights in the same order, making the accumulated sums (and the
        // final division) identical bit for bit.
        uint64_t auto_bits, forced_bits;
        std::memcpy(&auto_bits, &auto_tier, sizeof(auto_bits));
        std::memcpy(&forced_bits, &forced, sizeof(forced_bits));
        EXPECT_EQ(forced_bits, auto_bits)
            << "pair " << i << " kind " << DistanceName(kind) << " tier "
            << static_cast<int>(tier);
      }
    }
  }
}

TEST(SimdDistanceTest, IdenticalSmallSignaturesExactlyZero) {
  // The exactness contract the seed's property tests rely on: sub-vector
  // sizes run the pure scalar tail, where numerator and denominator sums
  // are built from the same operations.
  Signature s = Signature::FromTopK({{1, 0.5}, {2, 0.3}, {7, 0.2}}, 10);
  for (DistanceKind kind : AllDistanceKindsExtended()) {
    EXPECT_DOUBLE_EQ(Distance(kind, s, s), 0.0) << DistanceName(kind);
  }
}

TEST(SimdDistanceTest, KernelTableAgreesWithDistance) {
  const auto corpus = MakeCorpus(13);
  for (DistanceKind kind : AllDistanceKindsExtended()) {
    const DistanceKernelFn kernel = DistanceKernel(kind);
    const SignatureDistance dist(kind);
    for (const auto& [a, b] : corpus) {
      const double direct = Distance(kind, a, b);
      EXPECT_DOUBLE_EQ(kernel(a, b), direct);
      EXPECT_DOUBLE_EQ(dist(a, b), direct);
    }
  }
}

// ---------------------------------------------------------------------------
// RWR block kernels: runtime scalar toggle must not move a single bit.
// ---------------------------------------------------------------------------

CommGraph RandomGraph(size_t n, double edge_prob, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId src = 0; src + 2 < n; ++src) {
    for (NodeId dst = 0; dst < n - 2; ++dst) {
      if (src == dst) continue;
      if (rng.Bernoulli(edge_prob)) {
        b.AddEdge(src, dst, rng.UniformDouble() * 9.5 + 0.5);
      }
    }
    if (rng.Bernoulli(0.5)) {
      b.AddEdge(src, n - 2, rng.UniformDouble() * 9.5 + 0.5);
    }
  }
  return std::move(b).Build();
}

std::vector<RwrScheme::RwrSolve> SolveAll(const TransitionCache& cache,
                                          const RwrOptions& opts,
                                          size_t n) {
  std::vector<NodeId> sources(n);
  std::iota(sources.begin(), sources.end(), 0);
  RwrBatchEngine engine(opts, cache);
  RwrBatchWorkspace ws;
  return engine.SolveBatch(sources, ws);
}

TEST(SimdRwrTest, ScalarToggleBitIdenticalTruncatedAndUnbounded) {
  CommGraph g = RandomGraph(48, 0.15, 91);
  for (const RwrOptions& opts :
       {RwrOptions{.reset = 0.1,
                   .max_hops = 3,
                   .traversal = TraversalMode::kDirected},
        RwrOptions{.reset = 0.2,
                   .max_hops = 0,
                   .tolerance = 1e-10,
                   .max_iterations = 200},
        RwrOptions{.reset = 0.1,
                   .max_hops = 4,
                   .traversal = TraversalMode::kSymmetric}}) {
    TransitionCache cache(g, opts.traversal);
    std::vector<RwrScheme::RwrSolve> simd_solves, scalar_solves;
    {
      simd::SetEnabled(true);
      simd_solves = SolveAll(cache, opts, g.NumNodes());
    }
    {
      simd::ScopedScalar force_scalar;
      scalar_solves = SolveAll(cache, opts, g.NumNodes());
    }
    ASSERT_EQ(simd_solves.size(), scalar_solves.size());
    for (size_t i = 0; i < simd_solves.size(); ++i) {
      ASSERT_EQ(simd_solves[i].iterations, scalar_solves[i].iterations);
      ASSERT_EQ(simd_solves[i].probabilities.size(),
                scalar_solves[i].probabilities.size());
      for (size_t u = 0; u < simd_solves[i].probabilities.size(); ++u) {
        uint64_t sbits, cbits;
        std::memcpy(&sbits, &simd_solves[i].probabilities[u], sizeof(sbits));
        std::memcpy(&cbits, &scalar_solves[i].probabilities[u],
                    sizeof(cbits));
        EXPECT_EQ(sbits, cbits) << "source " << i << " node " << u;
      }
    }
  }
}

TEST(SimdRwrTest, DegreeOrderedTraversalWithinDriftBound) {
  // The opt-in degree-sorted dense traversal reorders per-target
  // accumulation, so it is held to the unbounded-solver drift bound rather
  // than bit-identity. Unbounded walks on a dense-ish graph go dense
  // within a hop or two, which is the only scan the order affects.
  CommGraph g = RandomGraph(40, 0.3, 17);
  RwrOptions opts{.reset = 0.15,
                  .max_hops = 0,
                  .tolerance = 1e-10,
                  .max_iterations = 300};
  TransitionCache plain(g, opts.traversal);
  TransitionCache ordered(g, opts.traversal);
  ordered.EnableDegreeOrder();
  ASSERT_TRUE(ordered.has_traversal_order());
  ASSERT_FALSE(plain.has_traversal_order());
  ASSERT_EQ(ordered.traversal_order().size(), g.NumNodes());

  const auto base = SolveAll(plain, opts, g.NumNodes());
  const auto reordered = SolveAll(ordered, opts, g.NumNodes());
  ASSERT_EQ(base.size(), reordered.size());
  for (size_t i = 0; i < base.size(); ++i) {
    for (size_t u = 0; u < base[i].probabilities.size(); ++u) {
      EXPECT_NEAR(reordered[i].probabilities[u], base[i].probabilities[u],
                  1e-9);
    }
  }
}

TEST(SimdRwrTest, DegreeOrderSurvivesRebase) {
  CommGraph g = RandomGraph(24, 0.25, 5);
  TransitionCache cache(g, TraversalMode::kDirected);
  cache.EnableDegreeOrder();
  const std::vector<NodeId> before(cache.traversal_order().begin(),
                                   cache.traversal_order().end());
  std::vector<NodeId> all(g.NumNodes());
  std::iota(all.begin(), all.end(), 0);
  cache.Rebase(g, all);
  EXPECT_TRUE(cache.has_traversal_order());
  EXPECT_EQ(std::vector<NodeId>(cache.traversal_order().begin(),
                                cache.traversal_order().end()),
            before);
}

// ---------------------------------------------------------------------------
// Cross-build golden: the same seeded corpus must hash identically on
// -DCOMMSIG_SIMD=off and =auto builds (the CI matrix runs both). The FNV
// hash covers the raw bit patterns, so any cross-ISA drift — packed
// kernels or RWR block iteration — flips it.
// ---------------------------------------------------------------------------

uint64_t FnvMix(uint64_t h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    h ^= (bits >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

TEST(SimdCrossBuildTest, DistanceAndRwrGoldenHash) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (const auto& [a, b] : MakeCorpus(321)) {
    for (DistanceKind kind : AllDistanceKindsExtended()) {
      h = FnvMix(h, Distance(kind, a, b));
    }
  }
  CommGraph g = RandomGraph(32, 0.2, 55);
  const RwrOptions opts{.reset = 0.1,
                        .max_hops = 3,
                        .traversal = TraversalMode::kDirected};
  TransitionCache cache(g, opts.traversal);
  for (const auto& solve : SolveAll(cache, opts, g.NumNodes())) {
    for (double p : solve.probabilities) h = FnvMix(h, p);
  }
  // Golden recorded from the scalar (-DCOMMSIG_SIMD=off) build; the VecD
  // bit-identity contract requires every backend to reproduce it. If a
  // deliberate numeric change lands (new corpus, new kernel math), re-run
  // once and update the constant from the failure message.
  EXPECT_EQ(h, 0xf2cb59392b48ab1dULL)
      << "golden hash now 0x" << std::hex << h;
}

}  // namespace
}  // namespace commsig
