#include "core/top_talkers.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace commsig {
namespace {

CommGraph MakeFanOut() {
  // 0 -> 1 (5), 0 -> 2 (3), 0 -> 3 (1), 0 -> 4 (1); total out = 10.
  GraphBuilder b(5);
  b.AddEdge(0, 1, 5.0);
  b.AddEdge(0, 2, 3.0);
  b.AddEdge(0, 3, 1.0);
  b.AddEdge(0, 4, 1.0);
  return std::move(b).Build();
}

TEST(TopTalkersTest, WeightsAreNormalizedVolumes) {
  TopTalkersScheme tt({.k = 4});
  Signature sig = tt.Compute(MakeFanOut(), 0);
  ASSERT_EQ(sig.size(), 4u);
  EXPECT_DOUBLE_EQ(sig.WeightOf(1), 0.5);
  EXPECT_DOUBLE_EQ(sig.WeightOf(2), 0.3);
  EXPECT_DOUBLE_EQ(sig.WeightOf(3), 0.1);
  EXPECT_DOUBLE_EQ(sig.WeightOf(4), 0.1);
  EXPECT_DOUBLE_EQ(sig.TotalWeight(), 1.0);
}

TEST(TopTalkersTest, KeepsOnlyTopK) {
  TopTalkersScheme tt({.k = 2});
  Signature sig = tt.Compute(MakeFanOut(), 0);
  ASSERT_EQ(sig.size(), 2u);
  EXPECT_TRUE(sig.Contains(1));
  EXPECT_TRUE(sig.Contains(2));
  EXPECT_FALSE(sig.Contains(3));
}

TEST(TopTalkersTest, NodeWithoutOutEdgesHasEmptySignature) {
  TopTalkersScheme tt({.k = 3});
  Signature sig = tt.Compute(MakeFanOut(), 3);
  EXPECT_TRUE(sig.empty());
}

TEST(TopTalkersTest, ExcludesSelfLoop) {
  GraphBuilder b(3);
  b.AddEdge(0, 0, 100.0);
  b.AddEdge(0, 1, 1.0);
  CommGraph g = std::move(b).Build();
  TopTalkersScheme tt({.k = 5});
  Signature sig = tt.Compute(g, 0);
  EXPECT_FALSE(sig.Contains(0));
  EXPECT_TRUE(sig.Contains(1));
  // Normalizer still counts the self-loop volume (it is real traffic).
  EXPECT_DOUBLE_EQ(sig.WeightOf(1), 1.0 / 101.0);
}

TEST(TopTalkersTest, BipartiteRestrictionFiltersOwnPartition) {
  GraphBuilder b(4);
  b.SetBipartiteLeftSize(2);
  b.AddEdge(0, 1, 9.0);  // within-partition edge (mixed input)
  b.AddEdge(0, 2, 1.0);
  CommGraph g = std::move(b).Build();
  TopTalkersScheme restricted({.k = 5, .restrict_to_opposite_partition = true});
  Signature sig = restricted.Compute(g, 0);
  EXPECT_FALSE(sig.Contains(1));
  EXPECT_TRUE(sig.Contains(2));

  TopTalkersScheme unrestricted({.k = 5});
  Signature sig2 = unrestricted.Compute(g, 0);
  EXPECT_TRUE(sig2.Contains(1));
}

TEST(TopTalkersTest, ComputeAllMatchesCompute) {
  CommGraph g = MakeFanOut();
  TopTalkersScheme tt({.k = 3});
  std::vector<NodeId> nodes = {0, 1, 2};
  auto sigs = tt.ComputeAll(g, nodes);
  ASSERT_EQ(sigs.size(), 3u);
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(sigs[i], tt.Compute(g, nodes[i]));
  }
}

TEST(TopTalkersTest, NameAndTraits) {
  TopTalkersScheme tt({.k = 10});
  EXPECT_EQ(tt.name(), "tt");
  auto traits = tt.traits();
  EXPECT_EQ(traits.characteristics.size(), 2u);
  EXPECT_EQ(traits.properties.size(), 2u);
}

TEST(TopTalkersTest, TieBreaksDeterministically) {
  GraphBuilder b(5);
  for (NodeId d = 1; d < 5; ++d) b.AddEdge(0, d, 1.0);
  CommGraph g = std::move(b).Build();
  TopTalkersScheme tt({.k = 2});
  Signature s1 = tt.Compute(g, 0);
  Signature s2 = tt.Compute(g, 0);
  EXPECT_EQ(s1, s2);
  EXPECT_TRUE(s1.Contains(1));
  EXPECT_TRUE(s1.Contains(2));
}

}  // namespace
}  // namespace commsig
