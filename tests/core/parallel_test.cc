#include "core/parallel.h"

#include <gtest/gtest.h>

#include "core/distance.h"
#include "data/flow_generator.h"

namespace commsig {
namespace {

FlowDataset SmallFlows() {
  FlowGeneratorConfig cfg;
  cfg.num_local_hosts = 40;
  cfg.num_external_hosts = 600;
  cfg.num_windows = 2;
  cfg.seed = 33;
  return FlowTraceGenerator(cfg).Generate();
}

TEST(ComputeAllParallelTest, MatchesSerialForEveryScheme) {
  FlowDataset ds = SmallFlows();
  CommGraph g = ds.Windows()[0];
  ThreadPool pool(4);
  SchemeOptions opts{.k = 10, .restrict_to_opposite_partition = true};
  for (const char* spec : {"tt", "ut", "rwr(c=0.1,h=3)", "rwr-push(c=0.1,eps=1e-6)"}) {
    auto scheme = CreateScheme(spec, opts);
    ASSERT_TRUE(scheme.ok());
    auto serial = (*scheme)->ComputeAll(g, ds.local_hosts);
    auto parallel = ComputeAllParallel(**scheme, g, ds.local_hosts, pool);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i]) << spec << " node " << i;
    }
  }
}

TEST(ComputeAllParallelTest, EmptyNodeList) {
  FlowDataset ds = SmallFlows();
  CommGraph g = ds.Windows()[0];
  ThreadPool pool(2);
  auto scheme = *CreateScheme("tt", {.k = 5});
  EXPECT_TRUE(ComputeAllParallel(*scheme, g, {}, pool).empty());
}

TEST(PairwiseDistancesParallelTest, MatchesSerial) {
  FlowDataset ds = SmallFlows();
  CommGraph g = ds.Windows()[0];
  ThreadPool pool(4);
  auto scheme = *CreateScheme("tt", {.k = 10});
  auto sigs = scheme->ComputeAll(g, ds.local_hosts);
  SignatureDistance dist(DistanceKind::kScaledHellinger);
  auto matrix = PairwiseDistancesParallel(sigs, dist, pool);
  const size_t n = sigs.size();
  ASSERT_EQ(matrix.size(), n * n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(matrix[i * n + i], 0.0);
    for (size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(matrix[i * n + j], dist(sigs[i], sigs[j]));
      EXPECT_DOUBLE_EQ(matrix[i * n + j], matrix[j * n + i]);
    }
  }
}

}  // namespace
}  // namespace commsig
