#include "core/rwr_push.h"

#include <numeric>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/rwr.h"
#include "data/flow_generator.h"
#include "graph/graph_builder.h"

namespace commsig {
namespace {

CommGraph MakeChain() {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  b.AddEdge(2, 3, 1.0);
  return std::move(b).Build();
}

TEST(RwrPushTest, MassIsConserved) {
  CommGraph g = MakeChain();
  RwrPushScheme push({.k = 10},
                     {.reset = 0.2, .epsilon = 1e-8,
                      .traversal = TraversalMode::kSymmetric});
  auto p = push.ApproximateVector(g, 0);
  double total = std::accumulate(p.begin(), p.end(), 0.0);
  // p lower-bounds the exact distribution; with tiny epsilon the residual
  // is negligible.
  EXPECT_GT(total, 0.999);
  EXPECT_LE(total, 1.0 + 1e-9);
}

TEST(RwrPushTest, NeverOverestimatesExact) {
  CommGraph g = MakeChain();
  RwrScheme exact({.k = 10}, {.reset = 0.2, .max_hops = 0, .tolerance = 1e-14,
                              .max_iterations = 2000,
                              .traversal = TraversalMode::kSymmetric});
  RwrPushScheme push({.k = 10},
                     {.reset = 0.2, .epsilon = 1e-4,
                      .traversal = TraversalMode::kSymmetric});
  auto truth = exact.StationaryVector(g, 0);
  auto approx = push.ApproximateVector(g, 0);
  for (size_t u = 0; u < truth.size(); ++u) {
    EXPECT_LE(approx[u], truth[u] + 1e-9) << "node " << u;
  }
}

TEST(RwrPushTest, ConvergesToExactAsEpsilonShrinks) {
  CommGraph g = MakeChain();
  RwrScheme exact({.k = 10}, {.reset = 0.15, .max_hops = 0,
                              .tolerance = 1e-14, .max_iterations = 2000,
                              .traversal = TraversalMode::kSymmetric});
  auto truth = exact.StationaryVector(g, 0);
  double prev_err = 1.0;
  for (double eps : {1e-2, 1e-4, 1e-8}) {
    RwrPushScheme push({.k = 10}, {.reset = 0.15, .epsilon = eps,
                                   .traversal = TraversalMode::kSymmetric});
    auto approx = push.ApproximateVector(g, 0);
    double err = 0.0;
    for (size_t u = 0; u < truth.size(); ++u) {
      err += std::abs(truth[u] - approx[u]);
    }
    EXPECT_LE(err, prev_err + 1e-12);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-6);
}

TEST(RwrPushTest, ErrorBoundPerNodeHolds) {
  // |p[u] - exact[u]| <= epsilon * norm(u) for every node.
  FlowGeneratorConfig cfg;
  cfg.num_local_hosts = 20;
  cfg.num_external_hosts = 300;
  cfg.num_windows = 2;
  cfg.seed = 9;
  FlowDataset ds = FlowTraceGenerator(cfg).Generate();
  CommGraph g = ds.Windows()[0];
  const double eps = 1e-4;
  RwrScheme exact({.k = 10}, {.reset = 0.1, .max_hops = 0, .tolerance = 1e-14,
                              .max_iterations = 5000,
                              .traversal = TraversalMode::kSymmetric});
  RwrPushScheme push({.k = 10}, {.reset = 0.1, .epsilon = eps,
                                 .traversal = TraversalMode::kSymmetric});
  auto truth = exact.StationaryVector(g, 0);
  auto approx = push.ApproximateVector(g, 0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    double norm = g.OutWeight(u) + g.InWeight(u);
    EXPECT_LE(truth[u] - approx[u], eps * norm + 1e-9) << "node " << u;
  }
}

TEST(RwrPushTest, SignaturesMatchExactRwrAtTightEpsilon) {
  FlowGeneratorConfig cfg;
  cfg.num_local_hosts = 30;
  cfg.num_external_hosts = 500;
  cfg.num_windows = 2;
  cfg.seed = 4;
  FlowDataset ds = FlowTraceGenerator(cfg).Generate();
  CommGraph g = ds.Windows()[0];
  SchemeOptions opts{.k = 10, .restrict_to_opposite_partition = true};
  RwrScheme exact(opts, {.reset = 0.1, .max_hops = 0, .tolerance = 1e-13,
                         .max_iterations = 2000});
  RwrPushScheme push(opts, {.reset = 0.1, .epsilon = 1e-9});
  double total_dist = 0.0;
  for (NodeId host : ds.local_hosts) {
    total_dist += Distance(DistanceKind::kJaccard, exact.Compute(g, host),
                           push.Compute(g, host));
  }
  EXPECT_LT(total_dist / ds.local_hosts.size(), 0.05);
}

TEST(RwrPushTest, IsolatedStartYieldsSelfMassOnly) {
  GraphBuilder b(3);
  b.AddEdge(1, 2, 1.0);
  CommGraph g = std::move(b).Build();
  RwrPushScheme push({.k = 10}, {.reset = 0.3, .epsilon = 1e-8});
  auto p = push.ApproximateVector(g, 0);
  EXPECT_NEAR(p[0], 1.0, 1e-6);
  EXPECT_TRUE(push.Compute(g, 0).empty());
}

TEST(RwrPushTest, MaxPushesCapsWork) {
  CommGraph g = MakeChain();
  RwrPushScheme push({.k = 10},
                     {.reset = 0.1, .epsilon = 1e-12, .max_pushes = 2});
  size_t pushes = 0;
  push.ApproximateVector(g, 0, &pushes);
  EXPECT_LE(pushes, 2u);
}

TEST(RwrPushTest, LocalityOfWork) {
  // On a large graph, a coarse epsilon should touch far fewer nodes than
  // the graph has.
  FlowGeneratorConfig cfg;
  cfg.num_local_hosts = 100;
  cfg.num_external_hosts = 10000;
  cfg.num_windows = 2;
  cfg.seed = 12;
  FlowDataset ds = FlowTraceGenerator(cfg).Generate();
  CommGraph g = ds.Windows()[0];
  RwrPushScheme push({.k = 10}, {.reset = 0.1, .epsilon = 1e-3});
  size_t pushes = 0;
  push.ApproximateVector(g, ds.local_hosts[0], &pushes);
  EXPECT_GT(pushes, 0u);
  EXPECT_LT(pushes, g.NumNodes() / 4);
}

TEST(RwrPushTest, NameEncodesParameters) {
  RwrPushScheme push({.k = 1}, {.reset = 0.25, .epsilon = 0.001});
  EXPECT_EQ(push.name(), "rwr-push(c=0.25,eps=0.001)");
}

}  // namespace
}  // namespace commsig
