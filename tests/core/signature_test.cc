#include "core/signature.h"

#include <gtest/gtest.h>

namespace commsig {
namespace {

using Entry = Signature::Entry;

TEST(SignatureTest, EmptyByDefault) {
  Signature sig;
  EXPECT_TRUE(sig.empty());
  EXPECT_EQ(sig.size(), 0u);
  EXPECT_EQ(sig.TotalWeight(), 0.0);
  EXPECT_FALSE(sig.Contains(0));
}

TEST(SignatureTest, FromTopKKeepsLargestWeights) {
  Signature sig = Signature::FromTopK(
      {{10, 0.1}, {20, 0.5}, {30, 0.3}, {40, 0.2}}, 2);
  ASSERT_EQ(sig.size(), 2u);
  EXPECT_TRUE(sig.Contains(20));
  EXPECT_TRUE(sig.Contains(30));
  EXPECT_FALSE(sig.Contains(10));
}

TEST(SignatureTest, EntriesSortedByNodeId) {
  Signature sig = Signature::FromTopK({{30, 0.3}, {10, 0.2}, {20, 0.5}}, 3);
  auto entries = sig.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].node, 10u);
  EXPECT_EQ(entries[1].node, 20u);
  EXPECT_EQ(entries[2].node, 30u);
}

TEST(SignatureTest, DropsNonPositiveWeights) {
  Signature sig =
      Signature::FromTopK({{1, 0.0}, {2, -1.0}, {3, 0.5}}, 5);
  EXPECT_EQ(sig.size(), 1u);
  EXPECT_TRUE(sig.Contains(3));
}

TEST(SignatureTest, FewerCandidatesThanK) {
  Signature sig = Signature::FromTopK({{1, 1.0}, {2, 2.0}}, 10);
  EXPECT_EQ(sig.size(), 2u);
}

TEST(SignatureTest, KZeroYieldsEmpty) {
  Signature sig = Signature::FromTopK({{1, 1.0}}, 0);
  EXPECT_TRUE(sig.empty());
}

TEST(SignatureTest, TieBreakDeterministicBySmallerNode) {
  // Four candidates with equal weight, k = 2: smaller ids win.
  Signature sig = Signature::FromTopK(
      {{4, 1.0}, {3, 1.0}, {2, 1.0}, {1, 1.0}}, 2);
  ASSERT_EQ(sig.size(), 2u);
  EXPECT_TRUE(sig.Contains(1));
  EXPECT_TRUE(sig.Contains(2));
}

TEST(SignatureTest, WeightOfPresentAndAbsent) {
  Signature sig = Signature::FromTopK({{5, 0.7}, {9, 0.3}}, 2);
  EXPECT_DOUBLE_EQ(sig.WeightOf(5), 0.7);
  EXPECT_DOUBLE_EQ(sig.WeightOf(9), 0.3);
  EXPECT_DOUBLE_EQ(sig.WeightOf(7), 0.0);
}

TEST(SignatureTest, TotalWeight) {
  Signature sig = Signature::FromTopK({{1, 0.25}, {2, 0.75}}, 2);
  EXPECT_DOUBLE_EQ(sig.TotalWeight(), 1.0);
}

TEST(SignatureTest, NormalizedSumsToOne) {
  Signature sig = Signature::FromTopK({{1, 2.0}, {2, 6.0}}, 2);
  Signature norm = sig.Normalized();
  EXPECT_DOUBLE_EQ(norm.TotalWeight(), 1.0);
  EXPECT_DOUBLE_EQ(norm.WeightOf(1), 0.25);
  EXPECT_DOUBLE_EQ(norm.WeightOf(2), 0.75);
}

TEST(SignatureTest, NormalizeEmptyIsNoop) {
  Signature sig;
  EXPECT_EQ(sig.Normalized(), sig);
}

TEST(SignatureTest, EqualityIsValueBased) {
  Signature a = Signature::FromTopK({{1, 0.5}, {2, 0.5}}, 2);
  Signature b = Signature::FromTopK({{2, 0.5}, {1, 0.5}}, 2);
  EXPECT_EQ(a, b);
  Signature c = Signature::FromTopK({{1, 0.5}, {3, 0.5}}, 2);
  EXPECT_NE(a, c);
}

TEST(SignatureTest, ToStringRendersDescendingWeight) {
  Interner interner;
  NodeId x = interner.Intern("x");
  NodeId y = interner.Intern("y");
  Signature sig = Signature::FromTopK({{x, 0.25}, {y, 0.75}}, 2);
  EXPECT_EQ(sig.ToString(interner), "{y:0.75, x:0.25}");
}

TEST(SignatureTest, ToStringEmpty) {
  Interner interner;
  EXPECT_EQ(Signature().ToString(interner), "{}");
}

TEST(SignatureTest, LargeCandidateSetSelectsExactTopK) {
  std::vector<Entry> candidates;
  for (NodeId i = 0; i < 1000; ++i) {
    candidates.push_back({i, static_cast<double>((i * 7919) % 1000) + 1.0});
  }
  Signature sig = Signature::FromTopK(candidates, 10);
  ASSERT_EQ(sig.size(), 10u);
  // Every kept weight must be >= every dropped weight.
  double min_kept = 1e18;
  for (const auto& e : sig.entries()) min_kept = std::min(min_kept, e.weight);
  size_t greater = 0;
  for (const auto& c : candidates) {
    if (c.weight > min_kept) ++greater;
  }
  EXPECT_LE(greater, 10u);
}

// The streaming selector must reproduce FromTopK exactly — same set, same
// order, same tie-breaking — since the batched RWR sweep path relies on
// interchangeability.
TEST(SignatureTest, TopKSelectorMatchesFromTopK) {
  for (size_t k : {0u, 1u, 3u, 10u, 50u}) {
    std::vector<Entry> candidates;
    for (NodeId i = 0; i < 500; ++i) {
      // Includes duplicate weights (tie-break coverage), zeros, and
      // negatives (pre-filter coverage).
      double w = static_cast<double>((i * 31) % 40) - 2.0;
      candidates.push_back({i, w});
    }
    Signature expected = Signature::FromTopK(candidates, k);
    Signature::TopKSelector selector(k);
    for (const Entry& e : candidates) selector.Offer(e);
    EXPECT_EQ(selector.Take(), expected) << "k=" << k;
  }
}

TEST(SignatureTest, TopKSelectorIsOrderIndependent) {
  std::vector<Entry> candidates;
  for (NodeId i = 0; i < 100; ++i) {
    candidates.push_back({i, static_cast<double>((i * 17) % 25) + 0.5});
  }
  Signature forward = Signature::FromTopK(candidates, 7);
  Signature::TopKSelector selector(7);
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    selector.Offer(*it);
  }
  EXPECT_EQ(selector.Take(), forward);
}

TEST(SignatureTest, TopKSelectorReusableAfterTake) {
  Signature::TopKSelector selector(2);
  selector.Offer({1, 5.0});
  selector.Offer({2, 1.0});
  selector.Offer({3, 3.0});
  Signature first = selector.Take();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_TRUE(first.Contains(1));
  EXPECT_TRUE(first.Contains(3));

  selector.Offer({9, 2.0});
  Signature second = selector.Take();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_TRUE(second.Contains(9));
}

}  // namespace
}  // namespace commsig
