#include "core/distance.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"

namespace commsig {
namespace {

Signature Sig(std::vector<Signature::Entry> entries) {
  return Signature::FromTopK(std::move(entries), 100);
}

// ---------------------------------------------------------------------------
// Properties shared by all four distances (parameterized sweep).
// ---------------------------------------------------------------------------

class DistancePropertyTest : public ::testing::TestWithParam<DistanceKind> {};

TEST_P(DistancePropertyTest, IdenticalSignaturesAtDistanceZero) {
  Signature s = Sig({{1, 0.5}, {2, 0.3}, {7, 0.2}});
  EXPECT_DOUBLE_EQ(Distance(GetParam(), s, s), 0.0);
}

TEST_P(DistancePropertyTest, DisjointSignaturesAtDistanceOne) {
  Signature a = Sig({{1, 0.5}, {2, 0.5}});
  Signature b = Sig({{3, 0.5}, {4, 0.5}});
  EXPECT_DOUBLE_EQ(Distance(GetParam(), a, b), 1.0);
}

TEST_P(DistancePropertyTest, BothEmptyAtDistanceZero) {
  EXPECT_DOUBLE_EQ(Distance(GetParam(), Signature(), Signature()), 0.0);
}

TEST_P(DistancePropertyTest, EmptyVsNonEmptyAtDistanceOne) {
  Signature s = Sig({{1, 1.0}});
  EXPECT_DOUBLE_EQ(Distance(GetParam(), Signature(), s), 1.0);
  EXPECT_DOUBLE_EQ(Distance(GetParam(), s, Signature()), 1.0);
}

TEST_P(DistancePropertyTest, SymmetricOnRandomSignatures) {
  Rng rng(404);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Signature::Entry> ea, eb;
    for (int i = 0; i < 10; ++i) {
      if (rng.Bernoulli(0.6)) {
        ea.push_back({static_cast<NodeId>(rng.UniformInt(20)),
                      rng.UniformDouble() + 0.01});
      }
      if (rng.Bernoulli(0.6)) {
        eb.push_back({static_cast<NodeId>(rng.UniformInt(20)),
                      rng.UniformDouble() + 0.01});
      }
    }
    Signature a = Sig(std::move(ea)), b = Sig(std::move(eb));
    EXPECT_DOUBLE_EQ(Distance(GetParam(), a, b), Distance(GetParam(), b, a));
  }
}

TEST_P(DistancePropertyTest, AlwaysInUnitInterval) {
  Rng rng(505);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Signature::Entry> ea, eb;
    size_t na = rng.UniformInt(8), nb = rng.UniformInt(8);
    for (size_t i = 0; i < na; ++i) {
      ea.push_back({static_cast<NodeId>(rng.UniformInt(12)),
                    rng.UniformDouble() * 10 + 0.001});
    }
    for (size_t i = 0; i < nb; ++i) {
      eb.push_back({static_cast<NodeId>(rng.UniformInt(12)),
                    rng.UniformDouble() * 10 + 0.001});
    }
    double d = Distance(GetParam(), Sig(std::move(ea)), Sig(std::move(eb)));
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST_P(DistancePropertyTest, MoreOverlapNeverIncreasesDistance) {
  // Growing the shared prefix while holding sizes fixed must not raise
  // distance: compare {1..i} vs {1..i, x...} sequences.
  Signature base = Sig({{1, 1.0}, {2, 1.0}, {3, 1.0}, {4, 1.0}});
  double prev = 1.1;
  // Overlap 0, 1, ..., 4 out of 4.
  std::vector<Signature> others = {
      Sig({{10, 1.0}, {11, 1.0}, {12, 1.0}, {13, 1.0}}),
      Sig({{1, 1.0}, {11, 1.0}, {12, 1.0}, {13, 1.0}}),
      Sig({{1, 1.0}, {2, 1.0}, {12, 1.0}, {13, 1.0}}),
      Sig({{1, 1.0}, {2, 1.0}, {3, 1.0}, {13, 1.0}}),
      Sig({{1, 1.0}, {2, 1.0}, {3, 1.0}, {4, 1.0}}),
  };
  for (const Signature& other : others) {
    double d = Distance(GetParam(), base, other);
    EXPECT_LE(d, prev + 1e-12);
    prev = d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DistancePropertyTest,
    ::testing::Values(DistanceKind::kJaccard, DistanceKind::kDice,
                      DistanceKind::kScaledDice,
                      DistanceKind::kScaledHellinger, DistanceKind::kCosine,
                      DistanceKind::kOverlap),
    [](const ::testing::TestParamInfo<DistanceKind>& param_info) {
      return std::string(DistanceName(param_info.param));
    });

// ---------------------------------------------------------------------------
// Hand-computed values per distance.
// ---------------------------------------------------------------------------

TEST(JaccardTest, HalfOverlap) {
  // |∩| = 1, |∪| = 3.
  Signature a = Sig({{1, 0.9}, {2, 0.1}});
  Signature b = Sig({{1, 0.1}, {3, 0.9}});
  EXPECT_NEAR(Distance(DistanceKind::kJaccard, a, b), 1.0 - 1.0 / 3.0,
              1e-12);
}

TEST(JaccardTest, IgnoresWeights) {
  Signature a = Sig({{1, 0.9}, {2, 0.1}});
  Signature b = Sig({{1, 0.0001}, {2, 123.0}});
  EXPECT_DOUBLE_EQ(Distance(DistanceKind::kJaccard, a, b), 0.0);
}

TEST(DiceTest, HandComputed) {
  // a = {1:0.6, 2:0.4}, b = {1:0.5, 3:0.5}
  // num = 0.6 + 0.5 = 1.1 over ∩ = {1}; den = total = 2.0.
  Signature a = Sig({{1, 0.6}, {2, 0.4}});
  Signature b = Sig({{1, 0.5}, {3, 0.5}});
  EXPECT_NEAR(Distance(DistanceKind::kDice, a, b), 1.0 - 1.1 / 2.0, 1e-12);
}

TEST(DiceTest, SensitiveToWeightOfSharedNodes) {
  // Shifting weight onto the shared node lowers Dice distance.
  Signature b = Sig({{1, 0.5}, {3, 0.5}});
  Signature light = Sig({{1, 0.1}, {2, 0.9}});
  Signature heavy = Sig({{1, 0.9}, {2, 0.1}});
  EXPECT_GT(Distance(DistanceKind::kDice, light, b),
            Distance(DistanceKind::kDice, heavy, b));
}

TEST(ScaledDiceTest, HandComputed) {
  // a = {1:0.6, 2:0.4}, b = {1:0.5, 3:0.5}
  // num = min(0.6,0.5) = 0.5; den = max(0.6,0.5) + 0.4 + 0.5 = 1.5.
  Signature a = Sig({{1, 0.6}, {2, 0.4}});
  Signature b = Sig({{1, 0.5}, {3, 0.5}});
  EXPECT_NEAR(Distance(DistanceKind::kScaledDice, a, b), 1.0 - 0.5 / 1.5,
              1e-12);
}

TEST(ScaledDiceTest, PremiumForEqualWeights) {
  // Same support; SDice is 0 only when the weights agree exactly.
  Signature equal1 = Sig({{1, 0.5}, {2, 0.5}});
  Signature equal2 = Sig({{1, 0.5}, {2, 0.5}});
  Signature skewed = Sig({{1, 0.9}, {2, 0.1}});
  EXPECT_DOUBLE_EQ(Distance(DistanceKind::kScaledDice, equal1, equal2), 0.0);
  EXPECT_GT(Distance(DistanceKind::kScaledDice, equal1, skewed), 0.0);
  // Dice, by contrast, sees identical supports as distance 0 regardless.
  EXPECT_DOUBLE_EQ(Distance(DistanceKind::kDice, equal1, skewed), 0.0);
}

TEST(ScaledHellingerTest, HandComputed) {
  // num = sqrt(0.6*0.5); den = max(0.6,0.5) + 0.4 + 0.5 = 1.5.
  Signature a = Sig({{1, 0.6}, {2, 0.4}});
  Signature b = Sig({{1, 0.5}, {3, 0.5}});
  EXPECT_NEAR(Distance(DistanceKind::kScaledHellinger, a, b),
              1.0 - std::sqrt(0.3) / 1.5, 1e-12);
}

TEST(ScaledHellingerTest, GentlerThanScaledDiceOnUnequalWeights) {
  // sqrt(w1*w2) >= min(w1,w2), so SHel similarity >= SDice similarity,
  // i.e. SHel distance <= SDice distance (the paper's motivation).
  Signature a = Sig({{1, 0.8}, {2, 0.2}});
  Signature b = Sig({{1, 0.2}, {2, 0.8}});
  EXPECT_LE(Distance(DistanceKind::kScaledHellinger, a, b),
            Distance(DistanceKind::kScaledDice, a, b));
}

TEST(DistanceNamesTest, RoundTrip) {
  for (DistanceKind kind : AllDistanceKindsExtended()) {
    auto parsed = ParseDistanceName(DistanceName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
}

// --- Extension distances -------------------------------------------------

TEST(CosineTest, IdenticalDirectionIsZero) {
  // Cosine is scale-invariant: proportional weight vectors match exactly.
  Signature a = Sig({{1, 0.2}, {2, 0.8}});
  Signature b = Sig({{1, 2.0}, {2, 8.0}});
  EXPECT_NEAR(Distance(DistanceKind::kCosine, a, b), 0.0, 1e-12);
}

TEST(CosineTest, OrthogonalIsOne) {
  Signature a = Sig({{1, 1.0}});
  Signature b = Sig({{2, 1.0}});
  EXPECT_DOUBLE_EQ(Distance(DistanceKind::kCosine, a, b), 1.0);
}

TEST(CosineTest, HandComputed) {
  // a = (3, 4) on nodes {1,2}; b = (4, 3): cos = 24/25.
  Signature a = Sig({{1, 3.0}, {2, 4.0}});
  Signature b = Sig({{1, 4.0}, {2, 3.0}});
  EXPECT_NEAR(Distance(DistanceKind::kCosine, a, b), 1.0 - 24.0 / 25.0,
              1e-12);
}

TEST(CosineTest, EmptyVsNonEmpty) {
  EXPECT_DOUBLE_EQ(Distance(DistanceKind::kCosine, Signature(),
                            Sig({{1, 1.0}})),
                   1.0);
}

TEST(OverlapTest, SubsetIsZero) {
  // The smaller signature is fully contained: overlap distance 0 even
  // though Jaccard is positive.
  Signature small = Sig({{1, 1.0}, {2, 1.0}});
  Signature big = Sig({{1, 1.0}, {2, 1.0}, {3, 1.0}, {4, 1.0}});
  EXPECT_DOUBLE_EQ(Distance(DistanceKind::kOverlap, small, big), 0.0);
  EXPECT_GT(Distance(DistanceKind::kJaccard, small, big), 0.0);
}

TEST(OverlapTest, HalfOverlap) {
  Signature a = Sig({{1, 1.0}, {2, 1.0}});
  Signature b = Sig({{1, 1.0}, {3, 1.0}});
  EXPECT_DOUBLE_EQ(Distance(DistanceKind::kOverlap, a, b), 0.5);
}

TEST(OverlapTest, EmptyVsNonEmpty) {
  EXPECT_DOUBLE_EQ(Distance(DistanceKind::kOverlap, Signature(),
                            Sig({{1, 1.0}})),
                   1.0);
}

TEST(ExtendedKindsTest, SupersetOfPaperKinds) {
  auto paper = AllDistanceKinds();
  auto extended = AllDistanceKindsExtended();
  EXPECT_EQ(extended.size(), paper.size() + 2);
  for (size_t i = 0; i < paper.size(); ++i) {
    EXPECT_EQ(extended[i], paper[i]);
  }
}

TEST(DistanceNamesTest, UnknownNameRejected) {
  EXPECT_FALSE(ParseDistanceName("euclid").ok());
}

TEST(DistanceNamesTest, AllKindsHasFour) {
  EXPECT_EQ(AllDistanceKinds().size(), 4u);
}

}  // namespace
}  // namespace commsig
