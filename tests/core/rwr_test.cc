#include "core/rwr.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "core/top_talkers.h"
#include "graph/graph_builder.h"

namespace commsig {
namespace {

CommGraph MakeFanOut() {
  GraphBuilder b(5);
  b.AddEdge(0, 1, 5.0);
  b.AddEdge(0, 2, 3.0);
  b.AddEdge(0, 3, 1.0);
  b.AddEdge(0, 4, 1.0);
  return std::move(b).Build();
}

CommGraph MakeTwoHopChain() {
  // 0 -> 1 -> 2 -> 3 (unit weights).
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  b.AddEdge(2, 3, 1.0);
  return std::move(b).Build();
}

RwrOptions Directed(double c, size_t h) {
  return {.reset = c, .max_hops = h, .traversal = TraversalMode::kDirected};
}

TEST(RwrTest, StationaryVectorIsProbabilityDistribution) {
  CommGraph g = MakeFanOut();
  RwrScheme rwr({.k = 10}, {.reset = 0.1, .max_hops = 0});
  auto r = rwr.StationaryVector(g, 0);
  double total = std::accumulate(r.begin(), r.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (double p : r) EXPECT_GE(p, 0.0);
}

TEST(RwrTest, TruncatedVectorAlsoSumsToOne) {
  CommGraph g = MakeTwoHopChain();
  for (size_t h : {1u, 2u, 3u, 5u}) {
    RwrScheme rwr({.k = 10}, {.reset = 0.2, .max_hops = h});
    auto r = rwr.StationaryVector(g, 0);
    EXPECT_NEAR(std::accumulate(r.begin(), r.end(), 0.0), 1.0, 1e-9)
        << "h=" << h;
  }
}

TEST(RwrTest, OneHopNoResetDirectedEqualsTopTalkers) {
  // The paper: with c = 0 and h = 1, RWR^h is identical to TT.
  CommGraph g = MakeFanOut();
  RwrScheme rwr({.k = 3}, Directed(0.0, 1));
  TopTalkersScheme tt({.k = 3});
  Signature a = rwr.Compute(g, 0);
  Signature b = tt.Compute(g, 0);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& e : b.entries()) {
    EXPECT_NEAR(a.WeightOf(e.node), e.weight, 1e-12);
  }
}

TEST(RwrTest, HopBoundLimitsReachDirected) {
  CommGraph g = MakeTwoHopChain();
  // h = 1: only node 1 reachable from 0 (besides the start).
  RwrScheme rwr1({.k = 10}, Directed(0.1, 1));
  Signature s1 = rwr1.Compute(g, 0);
  EXPECT_TRUE(s1.Contains(1));
  EXPECT_FALSE(s1.Contains(2));
  EXPECT_FALSE(s1.Contains(3));
  // h = 2 reaches node 2 but not 3.
  RwrScheme rwr2({.k = 10}, Directed(0.1, 2));
  Signature s2 = rwr2.Compute(g, 0);
  EXPECT_TRUE(s2.Contains(2));
  EXPECT_FALSE(s2.Contains(3));
  // h = 3 reaches the end.
  RwrScheme rwr3({.k = 10}, Directed(0.1, 3));
  EXPECT_TRUE(rwr3.Compute(g, 0).Contains(3));
}

TEST(RwrTest, HighResetConcentratesNearStart) {
  // The paper: c -> large collapses RWR onto TT (one-hop mass dominates).
  CommGraph g = MakeTwoHopChain();
  RwrScheme high({.k = 10}, {.reset = 0.9, .max_hops = 0,
                             .traversal = TraversalMode::kDirected});
  auto r = high.StationaryVector(g, 0);
  EXPECT_GT(r[1], r[2]);
  EXPECT_GT(r[2], r[3]);
  EXPECT_GT(r[0], 0.5);  // most mass stays home
}

TEST(RwrTest, LowResetDiffusesFurtherThanHighReset) {
  CommGraph g = MakeTwoHopChain();
  RwrScheme low({.k = 10}, {.reset = 0.05, .max_hops = 0,
                            .traversal = TraversalMode::kDirected});
  RwrScheme high({.k = 10}, {.reset = 0.8, .max_hops = 0,
                             .traversal = TraversalMode::kDirected});
  auto rl = low.StationaryVector(g, 0);
  auto rh = high.StationaryVector(g, 0);
  EXPECT_GT(rl[3], rh[3]);
}

TEST(RwrTest, SymmetricTraversalCrossesBipartiteGap) {
  // Bipartite hosts {0,1} -> externals {2,3}; hosts share external 2.
  // Directed walks from 0 die at externals; symmetric walks reach host 1.
  GraphBuilder b(4);
  b.SetBipartiteLeftSize(2);
  b.AddEdge(0, 2, 1.0);
  b.AddEdge(1, 2, 1.0);
  b.AddEdge(1, 3, 1.0);
  CommGraph g = std::move(b).Build();

  RwrScheme symmetric({.k = 10},
                      {.reset = 0.1, .max_hops = 3,
                       .traversal = TraversalMode::kSymmetric});
  Signature s = symmetric.Compute(g, 0);
  EXPECT_TRUE(s.Contains(1));  // sibling host via shared destination
  EXPECT_TRUE(s.Contains(2));

  RwrScheme directed({.k = 10}, Directed(0.1, 3));
  Signature d = directed.Compute(g, 0);
  EXPECT_FALSE(d.Contains(1));
}

TEST(RwrTest, DanglingMassReturnsToStart) {
  // 0 -> 1 where 1 has no out-edges: with directed traversal all walked
  // mass must cycle back through the start, never leak.
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  CommGraph g = std::move(b).Build();
  RwrScheme rwr({.k = 10}, {.reset = 0.3, .max_hops = 0,
                            .traversal = TraversalMode::kDirected});
  auto r = rwr.StationaryVector(g, 0);
  EXPECT_NEAR(r[0] + r[1], 1.0, 1e-9);
  EXPECT_GT(r[0], r[1]);
}

TEST(RwrTest, IsolatedStartKeepsAllMass) {
  GraphBuilder b(3);
  b.AddEdge(1, 2, 1.0);
  CommGraph g = std::move(b).Build();
  RwrScheme rwr({.k = 10}, {.reset = 0.1, .max_hops = 0});
  auto r = rwr.StationaryVector(g, 0);
  EXPECT_NEAR(r[0], 1.0, 1e-9);
  EXPECT_TRUE(rwr.Compute(g, 0).empty());
}

TEST(RwrTest, UnboundedConvergesToFixedPoint) {
  CommGraph g = MakeTwoHopChain();
  RwrScheme rwr({.k = 10}, {.reset = 0.15, .max_hops = 0,
                            .traversal = TraversalMode::kSymmetric});
  auto r = rwr.StationaryVector(g, 0);
  // One more application of the operator should not move the vector: check
  // via a much longer truncated run.
  RwrScheme longer({.k = 10}, {.reset = 0.15, .max_hops = 500,
                               .traversal = TraversalMode::kSymmetric});
  auto r2 = longer.StationaryVector(g, 0);
  for (size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(r[i], r2[i], 1e-6);
  }
}

TEST(RwrTest, DeepTruncationApproachesUnbounded) {
  // The paper: RWR^h for h beyond the diameter coincides with RWR^inf.
  CommGraph g = MakeTwoHopChain();
  RwrScheme unbounded({.k = 10}, {.reset = 0.1, .max_hops = 0,
                                  .traversal = TraversalMode::kSymmetric});
  RwrScheme deep({.k = 10}, {.reset = 0.1, .max_hops = 200,
                             .traversal = TraversalMode::kSymmetric});
  auto ru = unbounded.StationaryVector(g, 0);
  auto rd = deep.StationaryVector(g, 0);
  for (size_t i = 0; i < ru.size(); ++i) {
    EXPECT_NEAR(ru[i], rd[i], 1e-6);
  }
}

TEST(RwrTest, NameEncodesParameters) {
  RwrScheme truncated({.k = 1}, {.reset = 0.1, .max_hops = 3});
  EXPECT_EQ(truncated.name(), "rwr(c=0.1,h=3)");
  RwrScheme full({.k = 1}, {.reset = 0.25, .max_hops = 0});
  EXPECT_EQ(full.name(), "rwr(c=0.25)");
}

TEST(RwrTest, TraitsDependOnTruncation) {
  RwrScheme truncated({.k = 1}, {.reset = 0.1, .max_hops = 3});
  EXPECT_EQ(truncated.traits().properties.size(), 3u);
  RwrScheme full({.k = 1}, {.reset = 0.1, .max_hops = 0});
  EXPECT_EQ(full.traits().properties.size(), 2u);
}

TEST(RwrTest, WeightedEdgesSteerTheWalk) {
  // 0 -> 1 (9), 0 -> 2 (1): node 1 must receive ~9x node 2's probability.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 9.0);
  b.AddEdge(0, 2, 1.0);
  CommGraph g = std::move(b).Build();
  RwrScheme rwr({.k = 10}, Directed(0.0, 1));
  auto r = rwr.StationaryVector(g, 0);
  EXPECT_NEAR(r[1] / r[2], 9.0, 1e-9);
}

TEST(RwrTest, SignatureRespectsK) {
  CommGraph g = MakeFanOut();
  RwrScheme rwr({.k = 2}, {.reset = 0.1, .max_hops = 3});
  EXPECT_LE(rwr.Compute(g, 0).size(), 2u);
}

}  // namespace
}  // namespace commsig
