#!/usr/bin/env python3
"""Guard benchmark speedup gauges against regressions.

Compares every ``*_speedup`` gauge in a freshly produced bench snapshot
(BENCH_timeline.json and friends) against a checked-in baseline and fails
when any gauge falls more than ``--tolerance`` below its baseline value.
Only speedup gauges are compared: absolute nanosecond timings shift with
the host, but the incremental-vs-scratch *ratio* is what the incremental
engine owes the repo, and the baselines are set conservatively below
locally measured values to absorb CI machine noise on top of the
tolerance.

Usage (single pair):
    tools/bench_guard.py --current BENCH_timeline.json \
        --baseline bench/baselines/BENCH_timeline.baseline.json \
        [--tolerance 0.20]

Usage (several snapshots in one invocation):
    tools/bench_guard.py \
        --pair BENCH_timeline.json bench/baselines/BENCH_timeline.baseline.json \
        --pair BENCH_rwr_batch.json bench/baselines/BENCH_rwr_batch.baseline.json

Exit status: 0 when every gauge holds, 1 on any regression or missing
gauge, 2 on malformed input.
"""

import argparse
import json
import sys


def load_speedups(path):
    """Returns {gauge_name: value} for every *_speedup gauge in a snapshot."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            snapshot = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_guard: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    gauges = snapshot.get("gauges", {})
    if not isinstance(gauges, dict):
        print(f"bench_guard: {path} has no gauges object", file=sys.stderr)
        sys.exit(2)
    return {
        name: float(value)
        for name, value in gauges.items()
        if name.endswith("_speedup")
    }


def check_pair(current_path, baseline_path, tolerance):
    """Guards one current-vs-baseline snapshot pair.

    Returns (failure_messages, guarded_gauge_count); exits with status 2
    on malformed input, matching the single-pair behaviour.
    """
    current = load_speedups(current_path)
    baseline = load_speedups(baseline_path)
    if not baseline:
        print(f"bench_guard: no *_speedup gauges in {baseline_path}",
              file=sys.stderr)
        sys.exit(2)

    failures = []
    for name, base_value in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from {current_path} "
                            f"(baseline {base_value:.2f}x)")
            continue
        floor = base_value * (1.0 - tolerance)
        value = current[name]
        status = "ok" if value >= floor else "REGRESSED"
        print(f"{name}: {value:.2f}x vs baseline {base_value:.2f}x "
              f"(floor {floor:.2f}x) {status}")
        if value < floor:
            failures.append(f"{name}: {value:.2f}x < floor {floor:.2f}x "
                            f"(baseline {base_value:.2f}x, "
                            f"tolerance {tolerance:.0%})")

    # New gauges absent from the baseline are reported but never fail the
    # run — they become guarded once the baseline is refreshed.
    for name in sorted(set(current) - set(baseline)):
        print(f"{name}: {current[name]:.2f}x (no baseline, unguarded)")

    return failures, len(baseline)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current",
                        help="snapshot produced by this run")
    parser.add_argument("--baseline",
                        help="checked-in baseline snapshot")
    parser.add_argument("--pair", nargs=2, action="append", default=[],
                        metavar=("CURRENT", "BASELINE"),
                        help="guard CURRENT against BASELINE; repeatable, "
                             "combines with --current/--baseline")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop below baseline "
                             "(default 0.20 = 20%%)")
    args = parser.parse_args()

    pairs = list(args.pair)
    if args.current or args.baseline:
        if not (args.current and args.baseline):
            parser.error("--current and --baseline must be given together")
        pairs.insert(0, (args.current, args.baseline))
    if not pairs:
        parser.error("nothing to guard: give --current/--baseline or --pair")

    failures = []
    guarded = 0
    for current_path, baseline_path in pairs:
        failure_messages, count = check_pair(current_path, baseline_path,
                                             args.tolerance)
        failures.extend(failure_messages)
        guarded += count

    if failures:
        print("\nbench_guard: speedup regressions detected:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nbench_guard: all {guarded} guarded gauges hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
