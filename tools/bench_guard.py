#!/usr/bin/env python3
"""Guard benchmark speedup and throughput gauges against regressions.

Compares gauges in a freshly produced bench snapshot (BENCH_timeline.json
and friends) against a checked-in baseline and fails when any gauge falls
below its floor. Two gauge families are guarded, each with its own
tolerance:

* ``*_speedup`` ratios (default tolerance 20%): absolute nanosecond
  timings shift with the host, but the optimized-vs-baseline *ratio* is
  what each engine owes the repo.
* ``*_events_per_sec`` sustained-throughput floors (default tolerance
  15%): the ingestion pipeline additionally owes an absolute line rate,
  so its baseline records conservative events/sec values measured on the
  CI class of machine and the guard fails if the current run regresses
  more than ``--throughput-tolerance`` below them.

Baselines are set conservatively below locally measured values so the
tolerances absorb machine noise rather than real regressions; gauges with
other suffixes are ignored entirely.

Usage (single pair):
    tools/bench_guard.py --current BENCH_timeline.json \
        --baseline bench/baselines/BENCH_timeline.baseline.json \
        [--tolerance 0.20] [--throughput-tolerance 0.15]

Usage (several snapshots in one invocation):
    tools/bench_guard.py \
        --pair BENCH_timeline.json bench/baselines/BENCH_timeline.baseline.json \
        --pair BENCH_ingest.json bench/baselines/BENCH_ingest.baseline.json

Exit status: 0 when every gauge holds, 1 on any regression or missing
gauge, 2 on malformed input.
"""

import argparse
import json
import sys

# (suffix, tolerance-argument attribute, printed unit) per guarded family.
FAMILIES = (
    ("_speedup", "tolerance", "x"),
    ("_events_per_sec", "throughput_tolerance", " ev/s"),
)


def load_gauges(path, suffix):
    """Returns {gauge_name: value} for every gauge ending in `suffix`."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            snapshot = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_guard: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    gauges = snapshot.get("gauges", {})
    if not isinstance(gauges, dict):
        print(f"bench_guard: {path} has no gauges object", file=sys.stderr)
        sys.exit(2)
    return {
        name: float(value)
        for name, value in gauges.items()
        if name.endswith(suffix)
    }


def fmt(value, unit):
    if unit == "x":
        return f"{value:.2f}x"
    return f"{value:,.0f}{unit}"


def check_family(current_path, baseline_path, suffix, tolerance, unit):
    """Guards one gauge family of one snapshot pair.

    Returns (failure_messages, guarded_gauge_count).
    """
    current = load_gauges(current_path, suffix)
    baseline = load_gauges(baseline_path, suffix)

    failures = []
    for name, base_value in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from {current_path} "
                            f"(baseline {fmt(base_value, unit)})")
            continue
        floor = base_value * (1.0 - tolerance)
        value = current[name]
        status = "ok" if value >= floor else "REGRESSED"
        print(f"{name}: {fmt(value, unit)} vs baseline "
              f"{fmt(base_value, unit)} (floor {fmt(floor, unit)}) {status}")
        if value < floor:
            failures.append(f"{name}: {fmt(value, unit)} < floor "
                            f"{fmt(floor, unit)} "
                            f"(baseline {fmt(base_value, unit)}, "
                            f"tolerance {tolerance:.0%})")

    # New gauges absent from the baseline are reported but never fail the
    # run — they become guarded once the baseline is refreshed.
    for name in sorted(set(current) - set(baseline)):
        print(f"{name}: {fmt(current[name], unit)} (no baseline, unguarded)")

    return failures, len(baseline)


def check_pair(current_path, baseline_path, args):
    """Guards every family of one current-vs-baseline snapshot pair.

    Returns (failure_messages, guarded_gauge_count); exits with status 2
    on malformed input or a baseline with nothing to guard.
    """
    failures = []
    guarded = 0
    for suffix, tolerance_attr, unit in FAMILIES:
        family_failures, count = check_family(
            current_path, baseline_path, suffix,
            getattr(args, tolerance_attr), unit)
        failures.extend(family_failures)
        guarded += count
    if guarded == 0:
        print(f"bench_guard: no guarded gauges in {baseline_path}",
              file=sys.stderr)
        sys.exit(2)
    return failures, guarded


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current",
                        help="snapshot produced by this run")
    parser.add_argument("--baseline",
                        help="checked-in baseline snapshot")
    parser.add_argument("--pair", nargs=2, action="append", default=[],
                        metavar=("CURRENT", "BASELINE"),
                        help="guard CURRENT against BASELINE; repeatable, "
                             "combines with --current/--baseline")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop below baseline for "
                             "*_speedup gauges (default 0.20 = 20%%)")
    parser.add_argument("--throughput-tolerance", type=float, default=0.15,
                        help="allowed fractional drop below baseline for "
                             "*_events_per_sec gauges (default 0.15 = 15%%)")
    args = parser.parse_args()

    pairs = list(args.pair)
    if args.current or args.baseline:
        if not (args.current and args.baseline):
            parser.error("--current and --baseline must be given together")
        pairs.insert(0, (args.current, args.baseline))
    if not pairs:
        parser.error("nothing to guard: give --current/--baseline or --pair")

    failures = []
    guarded = 0
    for current_path, baseline_path in pairs:
        failure_messages, count = check_pair(current_path, baseline_path,
                                             args)
        failures.extend(failure_messages)
        guarded += count

    if failures:
        print("\nbench_guard: bench regressions detected:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nbench_guard: all {guarded} guarded gauges hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
