#!/usr/bin/env python3
"""commsig_lint: repo-specific static checks the generic tools can't express.

Rules (suppress one occurrence with `NOLINT(commsig-<rule>)` on the line):

  reader-check    ByteReader read (.U8/.U32/.U64/.Double/.String) whose
                  Result is dereferenced in the same expression or discarded
                  outright — checkpoint payloads are untrusted input, every
                  read must be checked.
  naked-new       `new` outside a smart-pointer/container. The only allowed
                  uses are the annotated intentionally-leaked singletons.
  endl            std::endl in library code ('\\n' without the flush; the
                  hot paths write through buffered FILE*/string anyway).
  header-tu       Every public header under src/ must compile as a
                  standalone translation unit (include-what-you-use smoke).

The retired regex rules (unchecked Result::value(), SIMD intrinsic
confinement) now live in the scope-aware analyzer (tools/analyze: `result`
pass rules discarded/unchecked-value, `determinism` pass rule
raw-simd-intrinsic). The lint runs the analyzer after its own rules so
`--target lint` still covers everything; pass --no-analyzer to skip it.

Usage: tools/commsig_lint.py [--root DIR] [--compiler CXX] [--no-headers]
                             [--no-analyzer]
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

READ_METHODS = r"(?:U8|U32|U64|Double|String)"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving offsets."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                elif text[j] == quote:
                    j += 1
                    break
                else:
                    j += 1
            out.append(quote + " " * (j - i - 2) + (quote if j <= n else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def line_at(original, lineno):
    lines = original.splitlines()
    return lines[lineno - 1] if 0 < lineno <= len(lines) else ""


def suppressed(original, lineno, rule):
    """The marker may sit on the flagged line or the one above it (for lines
    that would overflow the column limit)."""
    marker = f"NOLINT(commsig-{rule})"
    return (marker in line_at(original, lineno)
            or marker in line_at(original, lineno - 1))


def check_reader(path, original, code, findings):
    # Dereferenced in the same expression: reader.U32().value() / *reader.U32()
    for m in re.finditer(
            rf"\b\w+(?:\.|->){READ_METHODS}\(\)\s*\.\s*value\(\)", code):
        lineno = line_of(code, m.start())
        if not suppressed(original, lineno, "reader-check"):
            findings.append((path, lineno, "reader-check",
                             "ByteReader read dereferenced unchecked in the "
                             "same expression"))
    for m in re.finditer(rf"\*\s*\w+(?:\.|->){READ_METHODS}\(\)", code):
        lineno = line_of(code, m.start())
        if not suppressed(original, lineno, "reader-check"):
            findings.append((path, lineno, "reader-check",
                             "ByteReader read dereferenced unchecked in the "
                             "same expression"))
    # Discarded outright: `reader.U32();` as a full statement.
    for m in re.finditer(
            rf"(?:^|;|\{{|\}})\s*\w+(?:\.|->){READ_METHODS}\(\)\s*;", code):
        lineno = line_of(code, m.end() - 1)
        if not suppressed(original, lineno, "reader-check"):
            findings.append((path, lineno, "reader-check",
                             "ByteReader read result discarded"))


def check_naked_new(path, original, code, findings):
    for m in re.finditer(r"\bnew\b", code):
        lineno = line_of(code, m.start())
        if suppressed(original, lineno, "naked-new"):
            continue
        findings.append(
            (path, lineno, "naked-new",
             "naked new — use std::make_unique / containers, or annotate an "
             "intentionally leaked singleton with NOLINT(commsig-naked-new)"))


def check_endl(path, original, code, findings):
    for m in re.finditer(r"std\s*::\s*endl", code):
        lineno = line_of(code, m.start())
        if not suppressed(original, lineno, "endl"):
            findings.append((path, lineno, "endl",
                             "std::endl flushes on every use; write '\\n'"))


def check_headers(root, compiler, findings):
    src = os.path.join(root, "src")
    headers = []
    for dirpath, _, names in os.walk(src):
        for name in sorted(names):
            if name.endswith(".h"):
                headers.append(
                    os.path.relpath(os.path.join(dirpath, name), src))
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        for rel in headers:
            tu = os.path.join(tmp, "tu.cc")
            with open(tu, "w", encoding="utf-8") as f:
                f.write(f'#include "{rel}"\n')
            proc = subprocess.run(
                [compiler, "-std=c++20", "-fsyntax-only", "-I", src, tu],
                capture_output=True, text=True)
            if proc.returncode != 0:
                first_error = next(
                    (l for l in proc.stderr.splitlines() if "error" in l),
                    proc.stderr.strip().splitlines()[-1]
                    if proc.stderr.strip() else "compile failed")
                failures.append((rel, first_error))
    for rel, err in failures:
        findings.append((os.path.join("src", rel), 1, "header-tu",
                         f"header is not self-contained: {err}"))


def lint_tree(root, dirs, findings):
    for d in dirs:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if not name.endswith((".h", ".cc")):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                with open(path, encoding="utf-8") as f:
                    original = f.read()
                code = strip_comments_and_strings(original)
                check_reader(rel, original, code, findings)
                check_naked_new(rel, original, code, findings)
                check_endl(rel, original, code, findings)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--compiler", default="c++",
                        help="C++ compiler for the header-TU smoke check")
    parser.add_argument("--no-headers", action="store_true",
                        help="skip the (slower) header-TU compile check")
    parser.add_argument("--no-analyzer", action="store_true",
                        help="skip delegating to tools/analyze")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"commsig_lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings = []
    lint_tree(root, ["src", "tools"], findings)
    if not args.no_headers:
        check_headers(root, args.compiler, findings)

    for path, lineno, rule, message in sorted(findings):
        print(f"{path}:{lineno}: [commsig-{rule}] {message}")
    if findings:
        print(f"commsig_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1

    # Delegate the AST-level rules (Result discipline, SIMD confinement,
    # determinism, lock order, obs schema) to the analyzer: one source of
    # truth, scope-aware instead of regex.
    if not args.no_analyzer:
        proc = subprocess.run(
            [sys.executable,
             os.path.join(root, "tools", "analyze", "analyze.py"),
             "--root", root])
        if proc.returncode != 0:
            return proc.returncode
    print("commsig_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
