// commsig command-line tool: run the library's signature pipeline on a
// trace CSV (rows `src,dst,time,weight`) without writing any code.
//
// Subcommands:
//   signatures  print per-node signatures for one window
//   selfmatch   cross-window self-match AUC per scheme (paper Fig. 2/3)
//   multiusage  similar-signature pairs within one window (paper Fig. 5)
//   masquerade  Algorithm-1 masquerade detection across two windows
//   anomalies   nodes whose behaviour broke between two windows
//   stream      one-pass streaming TT/UT signatures (Section VI) with
//               optional crash-safe checkpointing
//   faultcheck  inject a fixed fraction of faults into the event stream and
//               report per-scheme signature drift (robustness gate)
//   chaoscheck  run the supervised stream under randomized kill / IO-fault
//               schedules and verify the recovered signatures are
//               bit-identical to a fault-free run (self-healing gate)
//   timeline    per-transition and per-lag persistence over a (possibly
//               sliding) window sequence, computed incrementally with
//               dirty-node tracking or from scratch
//
// Common flags:
//   --trace PATHS       input trace CSV (this or --netflow is required);
//                       comma-separated paths concatenate multiple files
//                       into one stream, sharing --max-total-errors
//   --netflow PATH      input NetFlow v5 binary export (TCP flows only
//                       unless --protocol 0)
//   --parse-workers N   decode inputs with the staged parallel ingestion
//                       pipeline using N parse workers (0 = serial
//                       readers, the default; the decoded stream is
//                       bit-identical either way)
//   --io-chunk-kb N     pipeline framing chunk size in KiB (default 256)
//   --ingest-queue N    bounded queue capacity, in chunks/batches, between
//                       pipeline stages (default 8)
//   --backpressure P    block = stall the IO stage when a queue fills
//                       (lossless, default); shed = drop whole chunks and
//                       report overload to the degradation ladder
//   --window-length N   window length in trace time units (default 86400)
//   --scheme SPEC       tt | ut | ut-tfidf | rwr(c=..,h=..) |
//                       rwr-push(c=..,eps=..) (default tt)
//   --dist NAME         jac | dice | sdice | shel | cos | overlap
//                       (default shel)
//   --k N               signature length (default 10)
//   --window I          window index (default 0)
//   --window2 J         second window for cross-window commands (default 1)
//   --decay THETA       accumulate windows as C'_t = theta*C'_{t-1} + C_t
//                       before computing signatures (default 0 = off)
//   --threads N         worker threads for signature computation (default 1)
//   --metrics-out PATH  write a JSON snapshot of the metrics registry
//                       (counters/gauges/histograms) after the command
//                       (and periodically during `stream`, keyed to the
//                       checkpoint cadence)
//   --trace-out PATH    record scoped spans and write a Chrome trace_event
//                       JSON file (open at chrome://tracing or
//                       https://ui.perfetto.dev); flushed periodically
//                       during `stream` like --metrics-out
//
// Introspection flags (all commands):
//   --stats-port N        serve live introspection over HTTP on
//                         127.0.0.1:N (0 = ephemeral port, logged at
//                         startup): /metrics /varz /healthz /tracez
//                         /pipelinez
//   --stats-stall-ms N    /healthz reports 503 once the last window
//                         advance is older than N ms (default 30000;
//                         0 = liveness only)
//   --stats-linger-ms N   keep the stats server (and process) alive N ms
//                         after the command finishes, so a scrape can
//                         read the final state (default 0)
//   --log-level L         debug | info | warn | error — structured-log
//                         threshold (default info; env COMMSIG_LOG)
//   --log-file PATH       append structured JSON log lines to PATH in
//                         addition to stderr
//   --window-budget-ms N  slow-window watchdog: emit a structured warning
//                         with the stage breakdown when one window advance
//                         exceeds N ms (default 0 = off)
//
// Robust ingestion flags (all commands):
//   --on-error MODE     fail | skip | quarantine — what a reader does with
//                       a malformed record (default fail)
//   --error-budget N    with skip/quarantine, abort anyway after N rejected
//                       records per file (default 100000; 0 = unlimited)
//   --max-total-errors N  run-wide budget shared across every input file:
//                       abort once more than N records were rejected in
//                       total, with a typed `budget_exhausted` log event
//                       (default 0 = off)
//   --quarantine-out P  with quarantine, write rejected records (reason,
//                       position, detail) to this dead-letter CSV
//
// Self-healing runtime flags (stream / chaoscheck; see DESIGN.md §13):
//   --retry-max-attempts N  attempts per retryable IO operation —
//                       checkpoint save, telemetry flush, log-file open,
//                       reader open (default 4)
//   --retry-initial-ms N   backoff before the first retry (default 5)
//   --retry-max-ms N       ceiling on any single backoff (default 200)
//   --retry-multiplier F   backoff growth factor (default 2.0)
//   --retry-jitter F       uniform jitter fraction in [0,1] (default 0.25)
//   --retry-deadline-ms N  total backoff budget per operation (0 = off)
//   --degrade-escalate-after N  consecutive failure/overload signals that
//                       step the degradation ladder one tier up (default 3)
//   --degrade-recover-after N   consecutive healthy epochs that step it
//                       back down (default 8)
//   --degrade-checkpoint-stretch N  checkpoint-cadence multiplier at the
//                       widen_checkpoints tier (default 4)
//   --max-epoch-attempts N  in-place retries per stream epoch before the
//                       from-scratch rebuild and, failing that, poison
//                       quarantine (default 3)
//   --failpoints SPEC   arm deterministic IO fail-points, e.g.
//                       'checkpoint/write=enospc@2;stream/epoch=eio@1x2'
//                       (site=kind[@after][xcount], ';'-separated; needs a
//                       build with COMMSIG_FAILPOINTS, the default)
//
// stream flags:
//   --checkpoint-dir D    durable checkpoint directory (enables restore)
//   --checkpoint-every N  checkpoint every N events (default 10000)
//   --kill-after N        abort (exit 3) after N events this run — crash
//                         test hook for checkpoint/restore round-trips
//   --emit-every N        additionally extract all focal signatures every N
//                         events (periodic re-emission; cached extractions
//                         make quiet nodes nearly free)
//   --replay-delay-us N   sleep N microseconds after each event — replays
//                         the trace as a live stream so the introspection
//                         plane can be watched while windows advance
//   --replay-rate X       timestamp-paced replay: trace time advances X
//                         times faster than wall-clock (1.0 = real time),
//                         scheduled against the stream's first timestamp
//                         so pacing never drifts (0 = off)
//   --dead-letter-out P   write poison-epoch dead-letter records (reason,
//                         position, detail) to this CSV
//
// chaoscheck flags (plus the stream + self-healing flags above):
//   --trials N          randomized kill/fault schedules to run (default 3)
//   --seed S            schedule RNG seed (default 1); the same seed
//                       replays the same schedule
//   --chaos-dir D       scratch checkpoint directory (default: a fresh
//                       directory under the system temp dir, removed on
//                       success)
//
// timeline flags:
//   --stride N          window start spacing in trace time units (default =
//                       --window-length, i.e. tumbling; smaller strides
//                       overlap: overlap fraction = 1 - stride/length)
//   --mode M            incremental | scratch (default incremental) — the
//                       incremental path diffs consecutive windows and
//                       recomputes dirty focal nodes only
//   --max-lag L         deepest lag for the persistence-by-lag table
//                       (default 5)
//
// faultcheck flags:
//   --fraction F        per-fault-type injection probability (default 0.01)
//   --seed S            fault injector seed (default 1)
//   --max-drift D       fail (exit 1) if any scheme's mean Jaccard drift
//                       exceeds D (default 0.25)
//
// Example:
//   commsig selfmatch --trace flows.csv --window-length 432000
//       --scheme 'rwr(c=0.1,h=3)' --dist shel     (one line)

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include <unistd.h>

#include "apps/anomaly.h"
#include "apps/masquerade_detector.h"
#include "apps/multiusage.h"
#include "common/bytes.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/distance.h"
#include "core/parallel.h"
#include "core/scheme.h"
#include "data/netflow.h"
#include "data/trace_io.h"
#include "ingest/pipeline.h"
#include "eval/properties.h"
#include "eval/timeline.h"
#include "graph/decayed_accumulator.h"
#include "graph/graph_stats.h"
#include "graph/windower.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/stats_server.h"
#include "obs/trace.h"
#include "obs/window_stats.h"
#include "robust/checkpoint.h"
#include "robust/degradation.h"
#include "robust/failpoints.h"
#include "robust/fault_injector.h"
#include "robust/record_errors.h"
#include "robust/retry.h"
#include "robust/supervisor.h"
#include "sketch/streaming_signatures.h"

namespace commsig {
namespace {

/// Rejects a malformed flag value with a message naming the flag. Exits
/// rather than returning: every caller would otherwise have to thread a
/// Status through, and a CLI flag error has exactly one sensible outcome.
[[noreturn]] void DieInvalidFlag(const std::string& key,
                                 const std::string& value,
                                 const char* expected) {
  std::fprintf(stderr, "invalid value for --%s: '%s' (expected %s)\n",
               key.c_str(), value.c_str(), expected);
  std::exit(2);
}

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  uint64_t GetInt(const std::string& key, uint64_t fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    const std::string& s = it->second;
    char* end = nullptr;
    errno = 0;
    uint64_t v = std::strtoull(s.c_str(), &end, 10);
    // strtoull silently wraps negatives and stops at the first bad char;
    // require the whole token to be a non-negative in-range integer.
    if (s.empty() || s[0] == '-' || end != s.c_str() + s.size() ||
        errno == ERANGE) {
      DieInvalidFlag(key, s, "a non-negative integer");
    }
    return v;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    const std::string& s = it->second;
    char* end = nullptr;
    errno = 0;
    double v = std::strtod(s.c_str(), &end);
    if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE ||
        !std::isfinite(v)) {
      DieInvalidFlag(key, s, "a finite number");
    }
    return v;
  }
};

int Usage() {
  std::fprintf(stderr,
               "usage: commsig <signatures|selfmatch|multiusage|masquerade|"
               "anomalies|stream|faultcheck|chaoscheck|timeline> "
               "--trace PATH [flags]\n"
               "see the header of tools/commsig_main.cc for all flags\n");
  return 2;
}

/// Builds reader options from the --on-error / --error-budget flags.
IngestOptions IngestFromArgs(const Args& args, RecordErrorLog* log) {
  IngestOptions opts;
  std::string policy = args.Get("on-error", "fail");
  if (policy == "fail") {
    opts.policy = ErrorPolicy::kFail;
  } else if (policy == "skip") {
    opts.policy = ErrorPolicy::kSkip;
  } else if (policy == "quarantine") {
    opts.policy = ErrorPolicy::kQuarantine;
  } else {
    DieInvalidFlag("on-error", policy, "fail | skip | quarantine");
  }
  opts.max_errors = args.GetInt("error-budget", 100000);
  opts.error_log = log;
  return opts;
}

/// Builds the parallel-ingestion configuration from the --parse-workers /
/// --io-chunk-kb / --ingest-queue / --backpressure flags. Only consulted
/// when --parse-workers > 0; the error policy (and its log/budget
/// pointers) rides along so the pipeline's merge stage applies it in
/// exact stream order.
ingest::PipelineOptions PipelineFromArgs(const Args& args,
                                         const IngestOptions& ingest_opts) {
  ingest::PipelineOptions opts;
  opts.parse_workers = static_cast<int>(args.GetInt("parse-workers", 0));
  opts.chunk_bytes =
      static_cast<size_t>(args.GetInt("io-chunk-kb", 256)) * 1024;
  opts.queue_capacity = args.GetInt("ingest-queue", 8);
  const std::string policy = args.Get("backpressure", "block");
  if (policy == "shed") {
    opts.backpressure = ingest::BackpressurePolicy::kShed;
  } else if (policy != "block") {
    DieInvalidFlag("backpressure", policy, "block | shed");
  }
  opts.ingest = ingest_opts;
  return opts;
}

/// Builds the IO retry policy from the --retry-* flags.
RetryPolicy RetryFromArgs(const Args& args) {
  RetryPolicy policy;
  policy.max_attempts =
      static_cast<uint32_t>(args.GetInt("retry-max-attempts", 4));
  policy.initial_backoff_ms = args.GetInt("retry-initial-ms", 5);
  policy.max_backoff_ms = args.GetInt("retry-max-ms", 200);
  policy.multiplier = args.GetDouble("retry-multiplier", 2.0);
  policy.jitter = args.GetDouble("retry-jitter", 0.25);
  policy.deadline_ms = args.GetInt("retry-deadline-ms", 0);
  return policy;
}

/// Builds the degradation-ladder knobs from the --degrade-* flags.
DegradationController::Options DegradeFromArgs(const Args& args) {
  DegradationController::Options opts;
  opts.escalate_after =
      static_cast<uint32_t>(args.GetInt("degrade-escalate-after", 3));
  opts.recover_after =
      static_cast<uint32_t>(args.GetInt("degrade-recover-after", 8));
  opts.checkpoint_stretch = args.GetInt("degrade-checkpoint-stretch", 4);
  return opts;
}

/// Splits a comma-separated flag value into its non-empty components.
std::vector<std::string> SplitPaths(const std::string& value) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= value.size()) {
    size_t comma = value.find(',', begin);
    if (comma == std::string::npos) comma = value.size();
    if (comma > begin) out.push_back(value.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return out;
}

/// Microseconds on the shared steady clock (the trace collector epoch), so
/// pipeline attribution and span timestamps line up in /varz and /tracez.
uint64_t NowMicros() { return obs::TraceCollector::Global().NowMicros(); }

/// Reads the input trace (CSV or NetFlow) under the requested error policy,
/// reporting and optionally dumping quarantined records. The decode is
/// attributed to the pipeline's parse stage.
bool LoadEvents(const Args& args, Interner& interner,
                std::vector<TraceEvent>& events) {
  std::string trace_path = args.Get("trace", "");
  std::string netflow_path = args.Get("netflow", "");
  if (trace_path.empty() == netflow_path.empty()) {
    obs::LogError("bad_flags")
        .Str("error", "exactly one of --trace / --netflow is required");
    return false;
  }
  RecordErrorLog error_log;
  IngestOptions ingest = IngestFromArgs(args, &error_log);
  // Run-wide budget shared by every file of this ingest (--trace accepts a
  // comma-separated list); 0 leaves only the per-file budget active.
  GlobalErrorBudget global_budget;
  global_budget.max_total_errors = args.GetInt("max-total-errors", 0);
  if (global_budget.max_total_errors > 0) {
    ingest.global_budget = &global_budget;
  }
  // Opening an input is retryable IO: a file served off flaky network
  // storage gets the same backoff treatment as a checkpoint write.
  Retrier retrier(RetryFromArgs(args));
  const uint64_t parse_start_us = NowMicros();
  if (!trace_path.empty()) {
    const std::vector<std::string> paths = SplitPaths(trace_path);
    if (paths.empty()) {
      obs::LogError("bad_flags").Str("error", "--trace lists no paths");
      return false;
    }
    for (const std::string& path : paths) {
      std::vector<TraceEvent> file_events;
      Status s = retrier.Run("reader_open", [&]() {
        Status fp = failpoints::Inject("reader/open");
        if (!fp.ok()) return fp;
        if (args.GetInt("parse-workers", 0) > 0) {
          auto loaded = ingest::ReadTraceEventsPipelined(
              path, ingest::PipelineFormat::kTraceCsv, interner,
              PipelineFromArgs(args, ingest));
          if (!loaded.ok()) return loaded.status();
          file_events = std::move(*loaded);
          return Status::OK();
        }
        auto loaded = ReadTraceCsv(path, interner, ingest);
        if (!loaded.ok()) return loaded.status();
        file_events = std::move(*loaded);
        return Status::OK();
      });
      if (!s.ok()) {
        obs::LogError("trace_load_failed")
            .Str("path", path)
            .Str("error", s.ToString());
        return false;
      }
      if (events.empty()) {
        events = std::move(file_events);
      } else {
        events.insert(events.end(), file_events.begin(), file_events.end());
      }
    }
  } else {
    NetflowReadOptions opts;
    opts.protocol_filter =
        static_cast<uint8_t>(args.GetInt("protocol", 6));
    if (args.GetInt("parse-workers", 0) > 0) {
      Status s = retrier.Run("reader_open", [&]() {
        Status fp = failpoints::Inject("reader/open");
        if (!fp.ok()) return fp;
        ingest::PipelineOptions popts = PipelineFromArgs(args, ingest);
        popts.netflow = opts;
        auto loaded = ingest::ReadTraceEventsPipelined(
            netflow_path, ingest::PipelineFormat::kNetflowV5, interner,
            popts);
        if (!loaded.ok()) return loaded.status();
        events = std::move(*loaded);
        return Status::OK();
      });
      if (!s.ok()) {
        obs::LogError("netflow_load_failed")
            .Str("path", netflow_path)
            .Str("error", s.ToString());
        return false;
      }
    } else {
      std::vector<NetflowV5Record> records_out;
      Status s = retrier.Run("reader_open", [&]() {
        Status fp = failpoints::Inject("reader/open");
        if (!fp.ok()) return fp;
        auto records = ReadNetflowV5File(netflow_path, ingest);
        if (!records.ok()) return records.status();
        records_out = std::move(*records);
        return Status::OK();
      });
      if (!s.ok()) {
        obs::LogError("netflow_load_failed")
            .Str("path", netflow_path)
            .Str("error", s.ToString());
        return false;
      }
      events = NetflowToEvents(records_out, interner, opts);
    }
  }
  obs::WindowStatsAggregator::Global().RecordSetupStage(
      obs::PipelineStage::kParse, NowMicros() - parse_start_us);
  if (error_log.total() > 0) {
    obs::LogWarn("records_rejected")
        .U64("rejected", error_log.total())
        .Str("path", trace_path.empty() ? netflow_path : trace_path);
  }
  std::string quarantine_out = args.Get("quarantine-out", "");
  if (!quarantine_out.empty()) {
    Status s = error_log.WriteCsv(quarantine_out);
    if (!s.ok()) {
      obs::LogError("quarantine_write_failed")
          .Str("path", quarantine_out)
          .Str("error", s.ToString());
      return false;
    }
    obs::LogInfo("quarantine_written")
        .Str("path", quarantine_out)
        .U64("records", error_log.total());
  }
  return true;
}

/// Everything loaded from the trace that the subcommands share.
struct Workspace {
  Interner interner;
  std::vector<CommGraph> windows;
  std::vector<NodeId> focal;  // nodes with outgoing traffic in any window
  std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>(1);

  std::vector<Signature> Signatures(const SignatureScheme& scheme,
                                    size_t window) {
    return ComputeAllParallel(scheme, windows[window], focal, *pool);
  }
};

bool Load(const Args& args, Workspace& ws) {
  std::vector<TraceEvent> events;
  if (!LoadEvents(args, ws.interner, events)) return false;
  uint64_t window_length = args.GetInt("window-length", 86400);
  TraceWindower windower(ws.interner.size(), window_length);
  const uint64_t build_start_us = NowMicros();
  ws.windows = windower.Split(events);
  obs::WindowStatsAggregator::Global().RecordSetupStage(
      obs::PipelineStage::kWindowBuild, NowMicros() - build_start_us);
  if (ws.windows.empty()) {
    obs::LogError("no_windows").U64("events", events.size());
    return false;
  }
  // Optional COI-style decayed accumulation: window i becomes the decayed
  // sum of windows 0..i.
  double theta = args.GetDouble("decay", 0.0);
  if (theta > 0.0) {
    if (theta >= 1.0) {
      obs::LogError("bad_flags").Str("error", "--decay must be in [0, 1)");
      return false;
    }
    DecayedGraphAccumulator acc(ws.interner.size(), theta);
    std::vector<CommGraph> decayed;
    decayed.reserve(ws.windows.size());
    for (const CommGraph& g : ws.windows) {
      acc.AddWindow(g);
      decayed.push_back(acc.Current());
    }
    ws.windows = std::move(decayed);
  }
  std::vector<bool> has_out(ws.interner.size(), false);
  for (const auto& g : ws.windows) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (g.OutDegree(v) > 0) has_out[v] = true;
    }
  }
  for (NodeId v = 0; v < has_out.size(); ++v) {
    if (has_out[v]) ws.focal.push_back(v);
  }
  size_t threads = args.GetInt("threads", 1);
  if (threads > 1) ws.pool = std::make_unique<ThreadPool>(threads);
  obs::LogInfo("trace_loaded")
      .U64("events", events.size())
      .U64("nodes", ws.interner.size())
      .U64("windows", ws.windows.size())
      .U64("focal_nodes", ws.focal.size());
  return true;
}

Result<std::unique_ptr<SignatureScheme>> SchemeFor(const Args& args) {
  SchemeOptions opts;
  opts.k = args.GetInt("k", 10);
  return CreateScheme(args.Get("scheme", "tt"), opts);
}

Result<DistanceKind> DistFor(const Args& args) {
  return ParseDistanceName(args.Get("dist", "shel"));
}

int RunSignatures(const Args& args, Workspace& ws) {
  size_t window = args.GetInt("window", 0);
  if (window >= ws.windows.size()) {
    obs::LogError("window_out_of_range")
        .U64("window", window)
        .U64("windows", ws.windows.size());
    return 1;
  }
  auto scheme = SchemeFor(args);
  if (!scheme.ok()) {
    obs::LogError("bad_scheme").Str("error", scheme.status().ToString());
    return 1;
  }
  auto sigs = ws.Signatures(**scheme, window);
  for (size_t i = 0; i < ws.focal.size(); ++i) {
    if (sigs[i].empty()) continue;
    std::printf("%s\t%s\n", ws.interner.LabelOf(ws.focal[i]).c_str(),
                sigs[i].ToString(ws.interner).c_str());
  }
  return 0;
}

int RunSelfMatch(const Args& args, Workspace& ws) {
  size_t w0 = args.GetInt("window", 0);
  size_t w1 = args.GetInt("window2", 1);
  if (w0 >= ws.windows.size() || w1 >= ws.windows.size()) {
    obs::LogError("window_out_of_range").U64("windows", ws.windows.size());
    return 1;
  }
  auto scheme = SchemeFor(args);
  auto dist = DistFor(args);
  if (!scheme.ok() || !dist.ok()) {
    obs::LogError("bad_scheme_or_distance");
    return 1;
  }
  auto s0 = ws.Signatures(**scheme, w0);
  auto s1 = ws.Signatures(**scheme, w1);
  SignatureDistance d(*dist);
  auto rocs = SelfMatchRoc(s0, s1, d);
  PropertyEllipse e = SummarizeProperties(s0, s1, d, 50000);
  std::printf("scheme=%s dist=%s windows=%zu->%zu\n",
              (*scheme)->name().c_str(), std::string(DistanceName(*dist)).c_str(),
              w0, w1);
  std::printf("self-match AUC  %.4f\n", MeanAuc(rocs));
  std::printf("persistence     %.4f +- %.4f\n", e.mean_persistence,
              e.std_persistence);
  std::printf("uniqueness      %.4f +- %.4f\n", e.mean_uniqueness,
              e.std_uniqueness);
  return 0;
}

int RunMultiusage(const Args& args, Workspace& ws) {
  size_t window = args.GetInt("window", 0);
  if (window >= ws.windows.size()) {
    obs::LogError("window_out_of_range")
        .U64("window", window)
        .U64("windows", ws.windows.size());
    return 1;
  }
  auto scheme = SchemeFor(args);
  auto dist = DistFor(args);
  if (!scheme.ok() || !dist.ok()) return 1;
  auto sigs = ws.Signatures(**scheme, window);
  MultiusageDetector detector(
      SignatureDistance(*dist),
      {.threshold = args.GetDouble("threshold", 0.5),
       .max_pairs = args.GetInt("max-pairs", 50)});
  auto pairs = detector.Detect(ws.focal, sigs);
  std::printf("%zu candidate alias pair(s)\n", pairs.size());
  for (const auto& p : pairs) {
    std::printf("%.4f\t%s\t%s\n", p.distance,
                ws.interner.LabelOf(p.a).c_str(),
                ws.interner.LabelOf(p.b).c_str());
  }
  return 0;
}

int RunMasquerade(const Args& args, Workspace& ws) {
  size_t w0 = args.GetInt("window", 0);
  size_t w1 = args.GetInt("window2", 1);
  if (w0 >= ws.windows.size() || w1 >= ws.windows.size()) {
    obs::LogError("window_out_of_range").U64("windows", ws.windows.size());
    return 1;
  }
  auto scheme = SchemeFor(args);
  auto dist = DistFor(args);
  if (!scheme.ok() || !dist.ok()) return 1;
  auto s0 = ws.Signatures(**scheme, w0);
  auto s1 = ws.Signatures(**scheme, w1);
  MasqueradeDetector detector(
      SignatureDistance(*dist),
      {.top_ell = args.GetInt("ell", 3),
       .delta_divisor = args.GetDouble("delta-divisor", 5.0)});
  auto detection = detector.Detect(ws.focal, s0, s1);
  std::printf("delta=%.4f, cleared=%zu, suspected pairs=%zu\n",
              detection.delta, detection.non_suspects.size(),
              detection.detected.size());
  for (const auto& [v, u] : detection.detected) {
    std::printf("%s\t-> now appears as\t%s\n",
                ws.interner.LabelOf(v).c_str(),
                ws.interner.LabelOf(u).c_str());
  }
  return 0;
}

int RunAnomalies(const Args& args, Workspace& ws) {
  size_t w0 = args.GetInt("window", 0);
  size_t w1 = args.GetInt("window2", 1);
  if (w0 >= ws.windows.size() || w1 >= ws.windows.size()) {
    obs::LogError("window_out_of_range").U64("windows", ws.windows.size());
    return 1;
  }
  auto scheme = SchemeFor(args);
  auto dist = DistFor(args);
  if (!scheme.ok() || !dist.ok()) return 1;
  auto s0 = ws.Signatures(**scheme, w0);
  auto s1 = ws.Signatures(**scheme, w1);
  auto anomalies =
      DetectAnomalies(ws.focal, s0, s1, SignatureDistance(*dist),
                      args.GetDouble("threshold", 2.0));
  std::printf("%zu anomalies between windows %zu and %zu\n",
              anomalies.size(), w0, w1);
  for (const Anomaly& a : anomalies) {
    std::printf("%s\tpersistence=%.4f\t%.1f sigma below mean\n",
                ws.interner.LabelOf(a.node).c_str(), a.persistence,
                a.deviations_below_mean);
  }
  return 0;
}

/// Writes the --metrics-out / --trace-out artifacts (defined after the
/// subcommands; `stream` also calls it mid-run at the checkpoint cadence,
/// under the retry policy — hence the Status).
Status FlushTelemetry(const Args& args, bool final_export);

/// Nodes with outgoing traffic anywhere in the stream — the focal
/// population whose signatures `stream` maintains.
std::vector<NodeId> FocalFromEvents(const Interner& interner,
                                    const std::vector<TraceEvent>& events) {
  std::vector<bool> is_src(interner.size(), false);
  for (const TraceEvent& e : events) {
    if (e.src < is_src.size()) is_src[e.src] = true;
  }
  std::vector<NodeId> focal;
  for (NodeId v = 0; v < is_src.size(); ++v) {
    if (is_src[v]) focal.push_back(v);
  }
  return focal;
}

/// Assembles the supervisor configuration shared by `stream` and
/// `chaoscheck` from the flags.
StreamSupervisor::Options SupervisorFromArgs(const Args& args,
                                             const std::string& ckpt_dir,
                                             RecordErrorLog* dead_letters) {
  StreamSupervisor::Options opts;
  opts.k = args.GetInt("k", 10);
  opts.checkpoint_every = args.GetInt("checkpoint-every", 10000);
  opts.emit_every = args.GetInt("emit-every", 0);
  opts.kill_after = args.GetInt("kill-after", 0);
  opts.replay_delay_us = args.GetInt("replay-delay-us", 0);
  opts.replay_rate = args.GetDouble("replay-rate", 0.0);
  opts.checkpoint_dir = ckpt_dir;
  opts.max_epoch_attempts =
      static_cast<uint32_t>(args.GetInt("max-epoch-attempts", 3));
  opts.epoch_budget_us = args.GetInt("window-budget-ms", 0) * 1000;
  opts.retry = RetryFromArgs(args);
  opts.degrade = DegradeFromArgs(args);
  opts.builder.seed = args.GetInt("seed", 0xc0de);
  opts.dead_letters = dead_letters;
  opts.manage_tracing = true;
  if (!args.Get("metrics-out", "").empty() ||
      !args.Get("trace-out", "").empty()) {
    opts.flush_telemetry = [&args]() {
      return FlushTelemetry(args, /*final_export=*/false);
    };
  }
  return opts;
}

int RunStream(const Args& args) {
  Interner interner;
  std::vector<TraceEvent> events;
  if (!LoadEvents(args, interner, events)) return 1;
  const size_t k = args.GetInt("k", 10);

  RecordErrorLog dead_letters;
  StreamSupervisor::Options opts =
      SupervisorFromArgs(args, args.Get("checkpoint-dir", ""), &dead_letters);
  StreamSupervisor supervisor(FocalFromEvents(interner, events),
                              std::move(opts));
  StreamRunReport report = supervisor.Run(events);

  obs::LogInfo("stream_supervisor_report")
      .U64("start_event", report.start_event)
      .U64("events_processed", report.events_processed)
      .U64("epoch_retries", report.epoch_retries)
      .U64("epochs_rebuilt", report.epochs_rebuilt)
      .U64("epochs_quarantined", report.epochs_quarantined)
      .U64("checkpoints_saved", report.checkpoints_saved)
      .U64("checkpoint_save_failures", report.checkpoint_save_failures)
      .U64("io_retries", report.io_retries)
      .Str("final_tier", DegradationTierName(report.final_tier))
      .Bool("restored", report.restored_from_checkpoint)
      .Bool("fallback_restore", report.restored_from_fallback);

  std::string dead_letter_out = args.Get("dead-letter-out", "");
  if (!dead_letter_out.empty() && dead_letters.total() > 0) {
    Status s = dead_letters.WriteCsv(dead_letter_out);
    if (!s.ok()) {
      obs::LogError("dead_letter_write_failed")
          .Str("path", dead_letter_out)
          .Str("error", s.ToString());
    }
  }
  if (report.killed) return 3;

  for (NodeId v : supervisor.focal()) {
    Signature tt = supervisor.builder()->TopTalkers(v, k);
    Signature ut = supervisor.builder()->UnexpectedTalkers(v, k);
    std::printf("%s\ttt\t%s\n", interner.LabelOf(v).c_str(),
                tt.ToString(interner).c_str());
    std::printf("%s\tut\t%s\n", interner.LabelOf(v).c_str(),
                ut.ToString(interner).c_str());
  }
  return 0;
}

/// One fault scenario of the chaos schedule: a fail-point spec armed for a
/// segment of the stream. Empty spec = a pure kill/restart segment.
struct ChaosScenario {
  const char* name;
  const char* spec;
};

constexpr ChaosScenario kChaosScenarios[] = {
    {"clean_kill", ""},
    {"enospc_on_checkpoint_write", "checkpoint/write=enospc@0x1"},
    {"fsync_fail_on_checkpoint", "checkpoint/fsync=fsync_fail@0x1"},
    {"torn_checkpoint_rename", "checkpoint/rename=torn_rename@0x1"},
    {"enospc_on_telemetry_flush", "telemetry/flush=enospc@0x2"},
    {"transient_epoch_fault", "stream/epoch=eio@0x2"},
    {"short_write_on_checkpoint", "checkpoint/write=short_write@0x1"},
};

int RunChaoscheck(const Args& args) {
  if (!failpoints::Enabled()) {
    obs::LogError("chaoscheck_unavailable")
        .Str("error", "binary built without COMMSIG_FAILPOINTS");
    return 2;
  }
  Interner interner;
  std::vector<TraceEvent> events;
  if (!LoadEvents(args, interner, events)) return 1;
  if (events.empty()) {
    obs::LogError("chaoscheck_no_events");
    return 1;
  }
  const size_t k = args.GetInt("k", 10);
  const uint64_t trials = args.GetInt("trials", 3);
  const uint64_t seed = args.GetInt("seed", 1);
  const std::vector<NodeId> focal = FocalFromEvents(interner, events);

  namespace fs = std::filesystem;
  std::string chaos_dir = args.Get("chaos-dir", "");
  const bool own_dir = chaos_dir.empty();
  if (own_dir) {
    chaos_dir = (fs::temp_directory_path() /
                 ("commsig_chaos_" + std::to_string(::getpid())))
                    .string();
  }

  // Reference: one fault-free supervised run. Everything after it must
  // converge to these exact signature bytes.
  FailPointRegistry::Global().Reset();
  std::vector<std::string> reference;
  {
    RecordErrorLog dead_letters;
    StreamSupervisor::Options opts =
        SupervisorFromArgs(args, "", &dead_letters);
    opts.kill_after = 0;
    StreamSupervisor ref(focal, std::move(opts));
    StreamRunReport report = ref.Run(events);
    if (report.killed || report.epochs_quarantined > 0) {
      obs::LogError("chaoscheck_reference_failed");
      return 1;
    }
    for (NodeId v : focal) {
      reference.push_back(ref.builder()->TopTalkers(v, k).ToString(interner));
      reference.push_back(
          ref.builder()->UnexpectedTalkers(v, k).ToString(interner));
    }
  }

  Rng rng(seed != 0 ? seed : 1);
  int rc = 0;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    std::error_code ec;
    fs::remove_all(chaos_dir, ec);
    uint64_t position = 0;
    uint64_t segments = 0;
    uint64_t retries = 0;
    uint64_t rebuilt = 0;
    uint64_t quarantined = 0;
    uint64_t fallback_restores = 0;
    StreamRunReport report;
    std::string final_signatures_verdict = "pass";

    // Keep killing and restarting until a segment runs to completion; each
    // segment gets a fresh supervisor (a new process, morally) plus one
    // randomly drawn fault scenario.
    while (true) {
      const ChaosScenario& scenario =
          kChaosScenarios[rng.UniformInt(std::size(kChaosScenarios))];
      FailPointRegistry::Global().Reset();
      if (scenario.spec[0] != '\0') {
        Status armed = FailPointRegistry::Global().ArmFromSpec(scenario.spec);
        if (!armed.ok()) {
          obs::LogError("chaoscheck_bad_scenario")
              .Str("scenario", scenario.name)
              .Str("error", armed.ToString());
          return 1;
        }
      }
      const uint64_t remaining = events.size() - position;
      // Kill somewhere inside the remaining stream on most segments; a
      // draw past the end lets the segment complete.
      const uint64_t kill_after =
          1 + rng.UniformInt(remaining + remaining / 2 + 1);

      RecordErrorLog dead_letters;
      StreamSupervisor::Options opts =
          SupervisorFromArgs(args, chaos_dir, &dead_letters);
      opts.kill_after = kill_after;
      StreamSupervisor supervisor(focal, std::move(opts));
      report = supervisor.Run(events);
      ++segments;
      retries += report.epoch_retries;
      rebuilt += report.epochs_rebuilt;
      quarantined += report.epochs_quarantined;
      if (report.restored_from_fallback) ++fallback_restores;
      position = report.final_position;
      obs::LogInfo("chaos_segment")
          .U64("trial", trial)
          .U64("segment", segments)
          .Str("scenario", scenario.name)
          .U64("kill_after", kill_after)
          .U64("position", position)
          .Bool("killed", report.killed);
      if (!report.killed) {
        FailPointRegistry::Global().Reset();
        if (quarantined > 0) {
          // Quarantine is correct behaviour for poison input, but these
          // scenarios are all recoverable — reaching it means the
          // supervisor gave up on an epoch it should have healed.
          final_signatures_verdict = "quarantined";
        } else {
          size_t idx = 0;
          for (NodeId v : focal) {
            if (supervisor.builder()->TopTalkers(v, k).ToString(interner) !=
                    reference[idx] ||
                supervisor.builder()
                        ->UnexpectedTalkers(v, k)
                        .ToString(interner) != reference[idx + 1]) {
              final_signatures_verdict = "diverged";
              break;
            }
            idx += 2;
          }
        }
        break;
      }
    }

    const bool pass = final_signatures_verdict == "pass";
    if (!pass) rc = 1;
    std::printf(
        "trial %llu: %s  segments=%llu retries=%llu rebuilt=%llu "
        "quarantined=%llu fallback_restores=%llu\n",
        static_cast<unsigned long long>(trial),
        final_signatures_verdict.c_str(),
        static_cast<unsigned long long>(segments),
        static_cast<unsigned long long>(retries),
        static_cast<unsigned long long>(rebuilt),
        static_cast<unsigned long long>(quarantined),
        static_cast<unsigned long long>(fallback_restores));
    obs::LogInfo("chaos_trial_done")
        .U64("trial", trial)
        .Str("verdict", final_signatures_verdict)
        .U64("segments", segments);
  }

  if (own_dir) {
    std::error_code ec;
    fs::remove_all(chaos_dir, ec);
  }
  std::printf("chaoscheck: %s (%llu trial(s), seed %llu)\n",
              rc == 0 ? "PASS" : "FAIL",
              static_cast<unsigned long long>(trials),
              static_cast<unsigned long long>(seed));
  return rc;
}

int RunFaultcheck(const Args& args) {
  Interner interner;
  std::vector<TraceEvent> events;
  if (!LoadEvents(args, interner, events)) return 1;
  const double fraction = args.GetDouble("fraction", 0.01);
  const double max_drift = args.GetDouble("max-drift", 0.25);
  const size_t k = args.GetInt("k", 10);
  const uint64_t window_length = args.GetInt("window-length", 86400);

  FaultInjector::Options fopts;
  fopts.seed = args.GetInt("seed", 1);
  fopts.p_drop = fraction;
  fopts.p_duplicate = fraction;
  fopts.p_corrupt_weight = fraction;
  fopts.p_corrupt_time = fraction;
  fopts.p_swap = fraction;
  FaultInjector injector(fopts);
  std::vector<TraceEvent> perturbed = injector.PerturbEvents(events);
  obs::LogInfo("faults_injected")
      .Str("report", injector.report().ToString());

  TraceWindower windower(interner.size(), window_length);
  std::vector<CommGraph> clean = windower.Split(events);
  std::vector<CommGraph> dirty = windower.Split(perturbed);
  if (clean.empty() || dirty.empty()) {
    obs::LogError("no_windows").Str("detail", "trace produced no windows");
    return 1;
  }
  const CommGraph& g0 = clean[0];
  const CommGraph& g1 = dirty[0];

  std::vector<NodeId> focal;
  for (NodeId v = 0; v < g0.NumNodes(); ++v) {
    if (g0.OutDegree(v) > 0) focal.push_back(v);
  }

  SignatureDistance jaccard(DistanceKind::kJaccard);
  int rc = 0;
  for (const char* spec : {"tt", "ut", "rwr(c=0.1,h=3)", "rwr(c=0.1)"}) {
    SchemeOptions scheme_opts;
    scheme_opts.k = k;
    auto scheme = CreateScheme(spec, scheme_opts);
    if (!scheme.ok()) {
      obs::LogError("bad_scheme")
          .Str("spec", spec)
          .Str("status", scheme.status().ToString());
      return 1;
    }
    double sum = 0.0;
    size_t n = 0;
    for (NodeId v : focal) {
      Signature a = (*scheme)->Compute(g0, v);
      Signature b = (*scheme)->Compute(g1, v);
      if (a.empty() && b.empty()) continue;
      sum += jaccard(a, b);
      ++n;
    }
    const double mean = n > 0 ? sum / static_cast<double>(n) : 0.0;
    std::printf("%-16s mean Dist_Jac drift over %zu focal node(s): %.4f\n",
                (*scheme)->name().c_str(), n, mean);
    if (mean > max_drift) {
      std::printf("%-16s drift %.4f exceeds --max-drift %.4f\n",
                  (*scheme)->name().c_str(), mean, max_drift);
      rc = 1;
    }
  }
  return rc;
}

int RunTimeline(const Args& args) {
  Interner interner;
  std::vector<TraceEvent> events;
  if (!LoadEvents(args, interner, events)) return 1;
  const uint64_t window_length = args.GetInt("window-length", 86400);
  const uint64_t stride = args.GetInt("stride", window_length);
  if (stride == 0 || stride > window_length) {
    obs::LogError("bad_flags")
        .Str("detail", "--stride must be in [1, --window-length]");
    return 1;
  }
  TraceWindower windower(interner.size(), window_length);
  const uint64_t split_begin_us = NowMicros();
  std::vector<CommGraph> windows = windower.SplitSliding(events, stride);
  obs::WindowStatsAggregator::Global().RecordSetupStage(
      obs::PipelineStage::kWindowBuild, NowMicros() - split_begin_us);
  if (windows.empty()) {
    obs::LogError("no_windows").Str("detail", "trace produced no windows");
    return 1;
  }

  std::vector<NodeId> focal;
  {
    std::vector<bool> has_out(interner.size(), false);
    for (const auto& g : windows) {
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        if (g.OutDegree(v) > 0) has_out[v] = true;
      }
    }
    for (NodeId v = 0; v < has_out.size(); ++v) {
      if (has_out[v]) focal.push_back(v);
    }
  }

  auto scheme = SchemeFor(args);
  auto dist = DistFor(args);
  if (!scheme.ok() || !dist.ok()) {
    obs::LogError("bad_scheme_or_distance")
        .Str("scheme_status",
             scheme.ok() ? "ok" : scheme.status().ToString())
        .Str("dist_status", dist.ok() ? "ok" : dist.status().ToString());
    return 1;
  }
  SignatureTimelineOptions topts;
  const std::string mode = args.Get("mode", "incremental");
  if (mode == "incremental") {
    topts.incremental = true;
  } else if (mode == "scratch") {
    topts.incremental = false;
  } else {
    DieInvalidFlag("mode", mode, "incremental | scratch");
  }

  auto per_window = ComputeSignatureTimeline(**scheme, windows, focal, topts);
  const double overlap =
      1.0 - static_cast<double>(stride) / static_cast<double>(window_length);
  std::printf("scheme=%s dist=%s windows=%zu stride=%llu overlap=%.2f "
              "mode=%s focal=%zu\n",
              (*scheme)->name().c_str(),
              std::string(DistanceName(*dist)).c_str(), windows.size(),
              static_cast<unsigned long long>(stride), overlap, mode.c_str(),
              focal.size());

  SignatureDistance d(*dist);
  const uint64_t persist_begin_us = NowMicros();
  for (const TransitionStats& t : PersistencePerTransition(per_window, d)) {
    std::printf("transition %zu->%zu  persistence %.4f +- %.4f\n",
                t.from_window, t.from_window + 1, t.mean_persistence,
                t.std_persistence);
  }
  for (const LagStats& l :
       PersistenceByLag(per_window, d, args.GetInt("max-lag", 5))) {
    std::printf("lag %zu  persistence %.4f +- %.4f  (%zu pair(s))\n", l.lag,
                l.mean_persistence, l.std_persistence, l.samples);
  }
  // The per-window advances were attributed inside the engine; the
  // cross-window persistence scan is a one-shot distance/extract stage.
  obs::WindowStatsAggregator::Global().RecordSetupStage(
      obs::PipelineStage::kExtract, NowMicros() - persist_begin_us);
  return 0;
}

/// Writes the requested observability artifacts. `final_export` is the
/// end-of-command export (logged at info); the periodic in-run flushes
/// during `stream` log at debug so they don't drown the event stream.
/// Returns the first write failure so the supervisor's retry loop can
/// re-drive a flush that hit a transient IO error.
Status FlushTelemetry(const Args& args, bool final_export) {
  Status first = failpoints::Inject("telemetry/flush");
  const obs::LogLevel ok_level =
      final_export ? obs::LogLevel::kInfo : obs::LogLevel::kDebug;
  std::string metrics_out = args.Get("metrics-out", "");
  if (!metrics_out.empty() && first.ok()) {
    Status s = obs::MetricsRegistry::Global().WriteJsonFile(metrics_out);
    if (!s.ok()) {
      obs::LogError("metrics_write_failed")
          .Str("path", metrics_out)
          .Str("status", s.ToString());
      first = s;
    } else {
      obs::Log(ok_level, "metrics_written")
          .Str("path", metrics_out)
          .Bool("final", final_export);
    }
  }
  std::string trace_out = args.Get("trace-out", "");
  if (!trace_out.empty() && first.ok()) {
    Status s = obs::TraceCollector::Global().WriteChromeTraceFile(trace_out);
    if (!s.ok()) {
      obs::LogError("trace_write_failed")
          .Str("path", trace_out)
          .Str("status", s.ToString());
      first = s;
    } else {
      obs::Log(ok_level, "trace_written")
          .Str("path", trace_out)
          .Str("viewer", "chrome://tracing or ui.perfetto.dev")
          .Bool("final", final_export);
    }
  }
  return first;
}

/// Applies the logging flags before anything can emit a structured line.
/// Returns false (after a raw-stderr diagnostic) on unusable flag values.
bool ConfigureLogging(const Args& args) {
  std::string level_name = args.Get("log-level", "");
  if (!level_name.empty()) {
    obs::LogLevel level = obs::LogLevel::kInfo;
    if (!obs::ParseLogLevel(level_name, level)) {
      std::fprintf(stderr, "invalid --log-level %s "
                   "(expected debug | info | warn | error)\n",
                   level_name.c_str());
      return false;
    }
    obs::LogSink::Global().SetMinLevel(level);
  }
  std::string log_file = args.Get("log-file", "");
  if (!log_file.empty()) {
    // The log sink is itself retryable IO: a transient open failure (NFS
    // hiccup, slow mount) should not kill the whole run.
    Retrier retrier(RetryFromArgs(args));
    Status s = retrier.Run("logsink_open", [&log_file]() {
      Status fp = failpoints::Inject("logsink/open");
      if (!fp.ok()) return fp;
      return obs::LogSink::Global().OpenFile(log_file);
    });
    if (!s.ok()) {
      std::fprintf(stderr, "cannot open --log-file %s: %s\n",
                   log_file.c_str(), s.ToString().c_str());
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) return Usage();
    args.flags[flag.substr(2)] = argv[i + 1];
  }

  // Arm fail-points before anything does IO (including the log sink), so a
  // spec can target every site in the process.
  std::string failpoint_spec = args.Get("failpoints", "");
  if (!failpoint_spec.empty()) {
    if (!failpoints::Enabled()) {
      std::fprintf(stderr,
                   "--failpoints requires a build with -DCOMMSIG_FAILPOINTS "
                   "(this binary was built without it)\n");
      return 2;
    }
    Status armed = FailPointRegistry::Global().ArmFromSpec(failpoint_spec);
    if (!armed.ok()) {
      DieInvalidFlag("failpoints", failpoint_spec,
                     "site=kind[@afterN][xM];... with kind one of eio | "
                     "enospc | short_write | torn_rename | fsync_fail");
    }
  }

  if (!ConfigureLogging(args)) return 1;

  // Stable snapshot keys even for paths this run never exercises.
  obs::PreRegisterCoreMetrics();
  if (!args.Get("trace-out", "").empty()) {
    obs::TraceCollector::Global().SetEnabled(true);
  }
  const uint64_t budget_ms = args.GetInt("window-budget-ms", 0);
  if (budget_ms > 0) {
    obs::WindowStatsAggregator::Global().SetLatencyBudgetUs(budget_ms * 1000);
  }

  // The introspection plane: serves /metrics, /varz, /healthz, /tracez and
  // /pipelinez for the lifetime of the command (plus an optional linger so
  // short runs stay probeable).
  std::unique_ptr<obs::StatsServer> stats_server;
  if (args.flags.count("stats-port") > 0) {
    obs::StatsServer::Options sopts;
    sopts.port = static_cast<uint16_t>(args.GetInt("stats-port", 0));
    sopts.stall_threshold_us = args.GetInt("stats-stall-ms", 30000) * 1000;
    stats_server = std::make_unique<obs::StatsServer>(sopts);
    Status s = stats_server->Start();
    if (!s.ok()) {
      obs::LogError("stats_server_start_failed")
          .Str("status", s.ToString());
      return 1;
    }
  }

  int rc;
  // stream, faultcheck and timeline manage their own event loading (they
  // need the raw stream or a sliding split, not the windowed Workspace).
  if (args.command == "stream" || args.command == "faultcheck" ||
      args.command == "timeline" || args.command == "chaoscheck") {
    rc = args.command == "stream"       ? RunStream(args)
         : args.command == "faultcheck" ? RunFaultcheck(args)
         : args.command == "chaoscheck" ? RunChaoscheck(args)
                                        : RunTimeline(args);
  } else {
    Workspace ws;
    if (!Load(args, ws)) return 1;
    if (args.command == "signatures") rc = RunSignatures(args, ws);
    else if (args.command == "selfmatch") rc = RunSelfMatch(args, ws);
    else if (args.command == "multiusage") rc = RunMultiusage(args, ws);
    else if (args.command == "masquerade") rc = RunMasquerade(args, ws);
    else if (args.command == "anomalies") rc = RunAnomalies(args, ws);
    else return Usage();
  }

  // Final export failures are already logged inside; they don't override
  // the command's exit code.
  Status flushed = FlushTelemetry(args, /*final_export=*/true);
  (void)flushed;

  if (stats_server != nullptr) {
    const uint64_t linger_ms = args.GetInt("stats-linger-ms", 0);
    if (linger_ms > 0) {
      obs::LogInfo("stats_server_lingering").U64("linger_ms", linger_ms);
      std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
    }
    stats_server->Stop();
  }
  return rc;
}

}  // namespace
}  // namespace commsig

int main(int argc, char** argv) { return commsig::Main(argc, argv); }
