"""Pass registry for commsig-analyzer.

Each pass module exposes `run(project, ctx) -> list[Finding]`.  `ctx` is the
driver's `PassContext` (repo root, schema path, options); passes consume the
cross-TU `Project` IR only, never raw source, so they behave identically
under both frontends.
"""

from passes import determinism, lock_order, obs_schema, result_discipline

ALL_PASSES = {
    "determinism": determinism.run,
    "lock-order": lock_order.run,
    "obs-schema": obs_schema.run,
    "result": result_discipline.run,
}
