"""Result pass: AST-level discipline for Result<T> / Status error flow.

Replaces the old regex heuristics in commsig_lint.py with rules that
understand declarations: the return-kind table is built from every method
declaration across the project, so a call is only flagged when *every*
declaration of that name returns Result/Status — an overloaded or
ambiguous name is never guessed at.

  discarded        a full-statement call to a Result/Status-returning
                   function whose return value is dropped (not bound,
                   not (void)-cast).  [[nodiscard]] on Result/Status makes
                   the compiler catch most of these; this rule also covers
                   TUs compiled without -Wall and pre-compile review.
  unchecked-value  r.value() / r.status() use on a Result local with no
                   preceding r.ok() check in the same function —
                   COMMSIG_CHECK aborts at runtime on a bad access, so an
                   unchecked value() is a latent crash
"""

from __future__ import annotations

from ir import Finding, Project

# Generated/driver entry points where a trailing Run() statement's Status
# feeds the process exit code via the call itself.
_DISCARD_OK = {"main"}


def run(project: Project, ctx) -> list[Finding]:
    table = project.result_return_table()
    result_only = {name for name, kinds in table.items()
                   if kinds == {"result"}}
    findings: list[Finding] = []
    for tu in project.tus:
        for fn in tu.functions:
            if fn.name in _DISCARD_OK:
                continue
            _check_discards(tu, fn, result_only, findings)
            _check_unchecked_value(tu, fn, findings)
    return findings


def _check_discards(tu, fn, result_only: set[str],
                    findings: list[Finding]) -> None:
    for c in fn.calls:
        if not c.is_stmt or c.name not in result_only:
            continue
        findings.append(Finding(
            tu.path, c.line, "result", "discarded",
            f"return value of {c.name}() is a Result/Status and is "
            "discarded; bind it, check ok(), or cast to (void) with a "
            "reason"))


def _check_unchecked_value(tu, fn, findings: list[Finding]) -> None:
    # Result-typed locals in this function.
    result_locals = {d.name: d.line for d in fn.decls
                     if d.type_text.replace("commsig::", "")
                     .lstrip("const ").startswith(("Result<", "Result "))}
    if not result_locals:
        return
    checked: set[str] = set()
    accesses: list = []
    for c in fn.calls:
        base = c.recv.replace("->", ".").split(".")[0].strip("()& ")
        if base not in result_locals:
            continue
        if c.name in ("ok", "status"):
            checked.add(base)
        elif c.name == "value" and base not in checked:
            accesses.append((base, c.line))
    for base, line in accesses:
        if base in checked:
            continue  # checked later on another path; give the benefit
        findings.append(Finding(
            tu.path, line, "result", "unchecked-value",
            f"'{base}.value()' is reached with no ok() check in this "
            "function; COMMSIG_CHECK aborts the process on error"))
