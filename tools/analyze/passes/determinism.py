"""Determinism pass: hash-order, randomness, and clock hazards.

The pipeline's contract (ROADMAP, DESIGN §3) is that a seeded run produces
bit-identical signatures, checkpoints, and CSV output on every platform.
Unordered-container iteration order is the classic way to break that
silently: libstdc++ and libc++ lay hash tables out differently, so any
iteration order that escapes into persisted or rng-consuming state is a
cross-platform divergence.  This pass flags:

  unordered-order-escape   copying an unordered container's iteration range
                           into an ordered sequence (assign / ctor / insert)
                           without a subsequent sort in the same function
  unordered-iter-sink      range-for over an unordered container inside a
                           serialization/output function, again with no
                           sort-based staging
  raw-rand                 rand()/srand()/drand48()/random()/rand_r() —
                           all randomness must flow through commsig::Rng
  nondeterministic-seed    std::random_device use
  wall-clock-in-core       wall/steady clock reads inside the deterministic
                           layers (core, graph, sketch, lsh, data)
  fp-contract              explicit fma outside src/common/simd.h, where
                           contraction is platform-dependent
  raw-simd-intrinsic       ISA intrinsics (_mm*/vld1q*/...) or intrinsic
                           headers outside src/common/simd.h — kernel code
                           goes through the commsig::simd wrappers so every
                           call site keeps its scalar fallback (and the
                           scalar/SIMD paths stay bit-identical)

A collect-then-sort staging pattern (SpaceSaving::AppendTo) is the repo's
sanctioned idiom and is recognised via the sort dampener.
"""

from __future__ import annotations

import re

from ir import Finding, Function, Project, TuFacts

_RAW_RAND = {"rand", "srand", "random", "drand48", "rand_r", "lrand48",
             "srand48"}
_WALL_CLOCK = {"time", "gettimeofday", "clock", "ftime", "localtime",
               "gmtime"}
_DET_LAYERS = ("src/core/", "src/graph/", "src/sketch/", "src/lsh/",
               "src/data/")
_SINK_FN = re.compile(
    r"(Write|Serialize|Append|Save|Export|Print|Emit|ToCsv|ToJson|Dump|"
    r"Checkpoint|Snapshot)")
_ORDER_TAKING = {"assign", "insert", "push_back", "append"}

# The portable wrapper is the one place raw ISA code may live.
_SIMD_HOME = "src/common/simd.h"
_SIMD_CALL = re.compile(
    r"^_mm\d*_\w+$"
    r"|^(?:vld\d|vst\d|vadd|vsub|vmul|vdiv|vmin|vmax|vdup|vabs|vsqrt|vceq|"
    r"vclt|vcgt|vfma|vget|vset|vcombine|vpadd|vaddv)q?_\w+$")
_SIMD_HEADERS = {"immintrin.h", "x86intrin.h", "arm_neon.h", "emmintrin.h",
                 "smmintrin.h", "tmmintrin.h", "avxintrin.h", "avx2intrin.h"}


def _unordered_names(fn: Function, tu: TuFacts) -> dict[str, int]:
    """Names visible in `fn` with unordered container types -> decl line."""
    out: dict[str, int] = {}
    for f in tu.fields:
        if f.cls == fn.qual_class and "unordered_" in f.type_text:
            out[f.name] = 0
    for d in fn.decls:
        if "unordered_" in d.type_text:
            out[d.name] = d.line
    return out


def _sorted_after(fn: Function, line: int) -> bool:
    """True when a sort/stable_sort call appears at or after `line`."""
    for c in fn.calls:
        if c.name in ("sort", "stable_sort") and c.line >= line:
            return True
    # cpplite keeps body tokens; catch sorts the call scan missed.
    for tok, tline in zip(fn.tokens, fn.token_lines):
        if tok in ("sort", "stable_sort") and tline >= line:
            return True
    return False


def run(project: Project, ctx) -> list[Finding]:
    findings: list[Finding] = []
    for tu in project.tus:
        in_det_layer = tu.path.startswith(_DET_LAYERS)
        in_simd_home = tu.path == _SIMD_HOME or tu.path.endswith("/simd.h")
        if not in_simd_home:
            for inc in tu.includes:
                if inc in _SIMD_HEADERS:
                    findings.append(Finding(
                        tu.path, 1, "determinism", "raw-simd-intrinsic",
                        f"ISA intrinsic header <{inc}> outside "
                        f"{_SIMD_HOME}; use the commsig::simd wrappers"))
        for fn in tu.functions:
            unordered = _unordered_names(fn, tu)
            _check_order_escape(tu, fn, unordered, findings)
            _check_iter_sink(tu, fn, unordered, findings)
            for c in fn.calls:
                if c.name in _RAW_RAND and not c.recv:
                    findings.append(Finding(
                        tu.path, c.line, "determinism", "raw-rand",
                        f"{c.name}() bypasses the seeded commsig::Rng; "
                        "all randomness must be reproducible from the "
                        "run seed"))
                if in_det_layer and c.name in _WALL_CLOCK and not c.recv:
                    findings.append(Finding(
                        tu.path, c.line, "determinism", "wall-clock-in-core",
                        f"{c.name}() reads the wall clock inside a "
                        "deterministic layer; derive time from event "
                        "timestamps instead"))
                if in_det_layer and c.name == "now" and not c.args:
                    findings.append(Finding(
                        tu.path, c.line, "determinism", "wall-clock-in-core",
                        "clock now() inside a deterministic layer; derive "
                        "time from event timestamps instead"))
                if c.name in ("fma", "fmaf", "__builtin_fma") and \
                        not in_simd_home:
                    findings.append(Finding(
                        tu.path, c.line, "determinism", "fp-contract",
                        "explicit fused multiply-add outside "
                        "src/common/simd.h gives platform-dependent "
                        "rounding"))
                if not in_simd_home and not c.recv and \
                        _SIMD_CALL.match(c.name):
                    findings.append(Finding(
                        tu.path, c.line, "determinism", "raw-simd-intrinsic",
                        f"raw SIMD intrinsic {c.name}() outside "
                        f"{_SIMD_HOME}; use the commsig::simd wrappers so "
                        "the scalar fallback stays equivalent"))
            for d in fn.decls:
                if "random_device" in d.type_text:
                    findings.append(Finding(
                        tu.path, d.line, "determinism",
                        "nondeterministic-seed",
                        "std::random_device is nondeterministic; seed "
                        "commsig::Rng from configuration"))
    return findings


def _check_order_escape(tu: TuFacts, fn: Function,
                        unordered: dict[str, int],
                        findings: list[Finding]) -> None:
    if not unordered:
        return
    for c in fn.calls:
        hit = ""
        if c.name in _ORDER_TAKING or (c.name not in ("begin", "end") and
                                       not c.recv):
            for arg in c.args:
                for u in unordered:
                    if f"{u}.begin" in arg or f"{u}. begin" in arg:
                        hit = u
        # Clang lowers `v(used.begin(), used.end())` to bare begin/end
        # member calls on the unordered receiver.
        if not hit and c.name == "begin" and c.recv in unordered:
            hit = c.recv
        if not hit:
            continue
        if _sorted_after(fn, c.line):
            continue
        findings.append(Finding(
            tu.path, c.line, "determinism", "unordered-order-escape",
            f"iteration order of unordered container '{hit}' is copied "
            "into an ordered sequence without sorting; hash layout "
            "differs across standard libraries"))
        return  # one finding per function keeps the report readable


def _check_iter_sink(tu: TuFacts, fn: Function,
                     unordered: dict[str, int],
                     findings: list[Finding]) -> None:
    if not unordered or not _SINK_FN.search(fn.name):
        return
    for loop in fn.loops:
        base = loop.seq_base
        last = loop.seq_text.replace("->", ".").split(".")[-1].split("[")[0]
        target = base if base in unordered else (
            last if last in unordered else "")
        if not target or loop.subscripted:
            continue
        if _sorted_after(fn, loop.line):
            continue
        findings.append(Finding(
            tu.path, loop.line, "determinism", "unordered-iter-sink",
            f"'{fn.name}' iterates unordered container '{target}' on an "
            "output path; stage keys into a vector and sort before "
            "emitting"))
