"""Obs-schema pass: keep docs/obs_schema.json in lockstep with the code.

Every metric, span, log event, and fail-point is addressed by a string
literal at its call site.  Dashboards, scrape configs, and the chaos
harness key on those names, so a renamed counter or a new log event that
never lands in the schema silently breaks consumers.  This pass extracts
all names from call sites and diffs them against the checked-in registry:

  undeclared       a name used in code but missing from its schema category
  stale            a schema entry no call site uses any more
  prereg-drift     PreRegisterCoreMetrics (the startup registration set
                   that makes metrics visible to scrapers before first use)
                   disagrees with the schema's `preregistered` lists
  dynamic-name     an observable addressed by a non-literal expression,
                   which the schema can never account for
  naming           a literal that violates the `area/metric_name`
                   (metrics/spans/failpoints) or `snake_case` (log events)
                   conventions

`--update-schema` rewrites the registry from the extracted facts; the diff
then goes through normal code review.
"""

from __future__ import annotations

import json
import re

from ir import Finding, Project

SCHEMA_CATEGORIES = ("counters", "gauges", "histograms", "spans",
                     "log_events", "failpoint_sites")

# call name -> (category, index of the name argument)
_SITES = {
    "COMMSIG_COUNTER_ADD": ("counters", 0),
    "COMMSIG_GAUGE_SET": ("gauges", 0),
    "COMMSIG_HISTOGRAM_OBSERVE": ("histograms", 0),
    "COMMSIG_SPAN": ("spans", 0),
    "GetCounter": ("counters", 0),
    "GetGauge": ("gauges", 0),
    "GetHistogram": ("histograms", 0),
    "LogDebug": ("log_events", 0),
    "LogInfo": ("log_events", 0),
    "LogWarn": ("log_events", 0),
    "LogError": ("log_events", 0),
    "Log": ("log_events", 1),  # obs::Log(level, "event")
    "Inject": ("failpoint_sites", 0),
    "OpenForWrite": ("failpoint_sites", 0),
    "WriteAll": ("failpoint_sites", 0),
    "FsyncFd": ("failpoint_sites", 0),
    "RenameFile": ("failpoint_sites", 0),
}

_PATH_NAME = re.compile(r"^[a-z0-9_]+(/[a-z0-9_]+)+$")
_FLAT_NAME = re.compile(r"^[a-z0-9_.]+$")

# Files allowed to address observables dynamically: the obs/fail-point
# plumbing itself, where names are forwarded parameters by design.
_INFRA = ("src/obs/", "src/robust/failpoints", "src/robust/checkpoint",
          "src/robust/io")
# Conventional forwarded-parameter spellings a wrapper uses for the name.
_FORWARDED = {"name", "site", "event", "label", "key", "site_name",
              "metric", "event_name"}


def extract(project: Project) -> tuple[dict[str, dict[str, list]], list]:
    """(category -> name -> [(path, line), ...], dynamic-name sites)."""
    used: dict[str, dict[str, list]] = {c: {} for c in SCHEMA_CATEGORIES}
    dynamic: list[tuple[str, int, str, str]] = []
    for tu in project.tus:
        for fn in tu.functions:
            for c in fn.calls:
                site = _SITES.get(c.name)
                if site is None:
                    continue
                category, arg_idx = site
                if c.name in ("Inject", "OpenForWrite", "WriteAll",
                              "FsyncFd", "RenameFile") and \
                        c.recv not in ("", "failpoints",
                                       "commsig::failpoints"):
                    continue  # same-named method on an unrelated class
                if c.name == "Log" and \
                        c.recv not in ("", "obs", "commsig::obs"):
                    continue  # Log() on an unrelated class
                if arg_idx >= len(c.args):
                    continue
                literal = (c.str_args[arg_idx]
                           if arg_idx < len(c.str_args) else None)
                if literal is not None:
                    used[category].setdefault(literal, []).append(
                        (tu.path, c.line))
                else:
                    arg = c.args[arg_idx].strip()
                    if tu.path.startswith(_INFRA) or arg in _FORWARDED or \
                            arg.split(".")[-1] in _FORWARDED:
                        continue
                    dynamic.append((tu.path, c.line, c.name, arg))
    return used, dynamic


def preregistered_in_code(project: Project) -> set[str]:
    """Every metric name PreRegisterCoreMetrics registers at startup.

    The function registers via both direct literal calls and range-for
    loops over initializer lists of names, so the reliable extraction is
    "all string literals in the body" (both frontends record them).
    """
    out: set[str] = set()
    for tu in project.tus:
        for fn in tu.functions:
            if fn.name != "PreRegisterCoreMetrics":
                continue
            for tok in fn.tokens:
                if tok.startswith('"') and tok.endswith('"') and len(tok) > 2:
                    out.add(tok[1:-1])
            for c in fn.calls:
                if c.str_args and c.str_args[0] is not None:
                    out.add(c.str_args[0])
    return out


def load_schema(path: str) -> dict | None:
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


def build_schema(project: Project) -> dict:
    used, _ = extract(project)
    prereg = preregistered_in_code(project)
    return {
        "comment": "Registry of every observable name the code emits. "
                   "Regenerate with: tools/analyze/analyze.py "
                   "--update-schema; review the diff like any API change.",
        "categories": {c: sorted(used[c]) for c in SCHEMA_CATEGORIES},
        "preregistered": sorted(prereg),
    }


def run(project: Project, ctx) -> list[Finding]:
    findings: list[Finding] = []
    used, dynamic = extract(project)
    for path, line, call, arg in dynamic:
        findings.append(Finding(
            path, line, "obs-schema", "dynamic-name",
            f"{call} is addressed by expression '{arg}'; observable names "
            "must be string literals so the schema stays complete"))
    for category, names in used.items():
        pattern = _FLAT_NAME if category == "log_events" else _PATH_NAME
        style = ("snake_case" if category == "log_events"
                 else "area/metric_name")
        for name, sites in sorted(names.items()):
            if not pattern.match(name):
                path, line = sites[0]
                findings.append(Finding(
                    path, line, "obs-schema", "naming",
                    f"{category[:-1]} '{name}' violates the {style} "
                    "convention"))
    schema = load_schema(ctx.schema_path)
    if schema is None:
        findings.append(Finding(
            ctx.schema_rel, 1, "obs-schema", "missing-schema",
            f"cannot read {ctx.schema_rel}; regenerate with "
            "--update-schema"))
        return findings
    declared = schema.get("categories", {})
    for category, names in used.items():
        known = set(declared.get(category, []))
        for name, sites in sorted(names.items()):
            if name not in known:
                path, line = sites[0]
                findings.append(Finding(
                    path, line, "obs-schema", "undeclared",
                    f"{category[:-1]} '{name}' is not in "
                    f"{ctx.schema_rel}; add it (or run --update-schema)"))
        for name in sorted(known - set(names)):
            findings.append(Finding(
                ctx.schema_rel, 1, "obs-schema", "stale",
                f"{category[:-1]} '{name}' is in the schema but no call "
                "site uses it"))
    prereg_code = preregistered_in_code(project)
    prereg_decl = schema.get("preregistered", [])
    prereg_decl = set(prereg_decl if isinstance(prereg_decl, list) else [])
    for name in sorted(prereg_code - prereg_decl):
        findings.append(Finding(
            ctx.schema_rel, 1, "obs-schema", "prereg-drift",
            f"PreRegisterCoreMetrics registers '{name}' but the schema's "
            "preregistered list omits it"))
    for name in sorted(prereg_decl - prereg_code):
        findings.append(Finding(
            ctx.schema_rel, 1, "obs-schema", "prereg-drift",
            f"schema expects '{name}' preregistered but "
            "PreRegisterCoreMetrics does not register it"))
    # The startup set must cover every counter/gauge/histogram the code
    # writes: that is exactly the real drift fixed when this pass landed —
    # metrics invisible to scrapers until their first increment.
    writers = {"COMMSIG_COUNTER_ADD", "COMMSIG_GAUGE_SET",
               "COMMSIG_HISTOGRAM_OBSERVE"}
    for tu in project.tus:
        for fn in tu.functions:
            for c in fn.calls:
                if c.name in writers and c.str_args and \
                        c.str_args[0] is not None and \
                        c.str_args[0] not in prereg_code:
                    findings.append(Finding(
                        tu.path, c.line, "obs-schema", "not-preregistered",
                        f"metric '{c.str_args[0]}' is written here but "
                        "PreRegisterCoreMetrics never registers it, so it "
                        "is invisible to /metrics scrapers until first "
                        "use"))
    return findings
