"""Lock-order pass: build the cross-TU lock acquisition graph, fail on cycles.

Nodes are capability instances named `Class::member` (or the raw mutex
expression for locals).  Edges mean "may be held while acquiring":

  nested       a second guard constructed while an earlier guard in the
               same function is still in scope
  call-excl    a call made under a lock to a method annotated
               COMMSIG_EXCLUDES(mu) — the callee acquires `mu` internally
  obs-macro    COMMSIG_COUNTER_ADD / GAUGE_SET / HISTOGRAM_OBSERVE under a
               lock; the macros acquire MetricsRegistry::mutex_ (and
               Histogram::mutex_ for observes) behind the scenes.  This is
               the exact shape of the historical ThreadPool -> Registry
               deadlock, encoded statically.
  declared     COMMSIG_ACQUIRED_BEFORE / ACQUIRED_AFTER annotations

A cycle in the merged graph is a potential deadlock; the finding reports the
full path with one witness site per edge.
"""

from __future__ import annotations

from ir import Finding, Project

_OBS_MACROS = {
    "COMMSIG_COUNTER_ADD": ["MetricsRegistry::mutex_"],
    "COMMSIG_GAUGE_SET": ["MetricsRegistry::mutex_"],
    "COMMSIG_HISTOGRAM_OBSERVE": ["MetricsRegistry::mutex_",
                                  "Histogram::mutex_"],
}


class _Graph:
    def __init__(self):
        # edge -> (path, line, why) witness for the first sighting
        self.edges: dict[tuple[str, str], tuple[str, int, str]] = {}

    def add(self, a: str, b: str, path: str, line: int, why: str) -> None:
        if a and b and a != b and (a, b) not in self.edges:
            self.edges[(a, b)] = (path, line, why)


def _mutex_node(project: Project, cls: str, fn, expr: str) -> str:
    """Canonical node name for a mutex expression seen in class `cls`."""
    expr = expr.strip().lstrip("&*").strip()
    if not expr:
        return ""
    if "::" in expr:
        return expr
    head, _, member = expr.partition(".")
    if member:
        # `other.mu_`: resolve the declared type of `other` if we can.
        base_type = fn.decl_type(head) if fn else ""
        base_cls = base_type.split("<")[0].split("::")[-1].replace(
            "&", "").replace("const", "").strip()
        if (base_cls, member) in project.fields:
            return f"{base_cls}::{member}"
        owners = [c for (c, m) in project.fields if m == member]
        if len(set(owners)) == 1:
            return f"{owners[0]}::{member}"
        return expr
    if (cls, expr) in project.fields:
        return f"{cls}::{expr}"
    owners = [c for (c, m) in project.fields if m == expr]
    if len(set(owners)) == 1:
        return f"{owners[0]}::{expr}"
    return expr


def _callee_class(project: Project, fn, call) -> str:
    """Best-effort class of `call`'s receiver."""
    recv = call.recv.replace("->", ".").split(".")[0].strip("()& ")
    if recv in ("", "this"):
        return fn.qual_class
    t = fn.decl_type(recv)
    if not t and (fn.qual_class, recv) in project.fields:
        t = project.fields[(fn.qual_class, recv)].type_text
    if t:
        for wrap in ("unique_ptr<", "shared_ptr<", "optional<"):
            if wrap in t:
                t = t.split(wrap, 1)[1]
        return t.split("<")[0].split("::")[-1].replace("&", "").replace(
            "*", "").replace("const", "").strip()
    if call.recv.endswith("::" + call.recv.split("::")[-1]) and \
            "::" in call.recv:
        return call.recv.split("::")[0]
    return ""


def run(project: Project, ctx) -> list[Finding]:
    g = _Graph()
    for tu in project.tus:
        for f in tu.fields:
            me = f"{f.cls}::{f.name}"
            for other in f.acquired_before:
                g.add(me, _mutex_node(project, f.cls, None, other),
                      tu.path, f.line, "declared ACQUIRED_BEFORE")
            for other in f.acquired_after:
                g.add(_mutex_node(project, f.cls, None, other), me,
                      tu.path, f.line, "declared ACQUIRED_AFTER")
        for fn in tu.functions:
            held = [( _mutex_node(project, fn.qual_class, fn, l.mutex_text),
                      l) for l in fn.locks]
            # REQUIRES(mu) methods run with `mu` already held on entry.
            entry = [(_mutex_node(project, fn.qual_class, fn, r), None)
                     for r in fn.requires]
            for i, (node_a, lock_a) in enumerate(held):
                for node_b, lock_b in held[i + 1:]:
                    if lock_b.line > lock_a.line and \
                            lock_b.depth >= lock_a.depth and \
                            (lock_a.release_line == 0 or
                             lock_b.line <= lock_a.release_line):
                        g.add(node_a, node_b, tu.path, lock_b.line,
                              "nested guard")
            for c in fn.calls:
                acquired = list(_OBS_MACROS.get(c.name, []))
                why = f"{c.name} under lock"
                if not acquired:
                    decl = None
                    cls = _callee_class(project, fn, c)
                    if cls and (cls, c.name) in project.methods:
                        decl = project.methods[(cls, c.name)]
                    else:
                        cands = [m for m in
                                 project.methods_by_name.get(c.name, [])
                                 if m.excludes]
                        if len({(m.cls, tuple(m.excludes))
                                for m in cands}) == 1:
                            decl = cands[0]
                    if decl is not None and decl.excludes:
                        acquired = [_mutex_node(project, decl.cls, None, e)
                                    for e in decl.excludes]
                        why = (f"call to {decl.cls}::{c.name} which "
                               "acquires internally")
                if not acquired:
                    continue
                holders = [n for n, l in held
                           if l is not None and l.line < c.line and
                           (l.release_line == 0 or
                            c.line <= l.release_line)] + \
                          [n for n, l in entry if l is None]
                for h in holders:
                    for a in acquired:
                        g.add(h, a, tu.path, c.line, why)
    return _find_cycles(g)


def _find_cycles(g: _Graph) -> list[Finding]:
    adj: dict[str, list[str]] = {}
    for (a, b) in g.edges:
        adj.setdefault(a, []).append(b)
    findings: list[Finding] = []
    seen_cycles: set[frozenset] = set()
    state: dict[str, int] = {}   # 1 = on stack, 2 = done
    stack: list[str] = []

    def dfs(node: str) -> None:
        state[node] = 1
        stack.append(node)
        for nxt in adj.get(node, []):
            if state.get(nxt) == 1:
                cycle = stack[stack.index(nxt):] + [nxt]
                key = frozenset(cycle)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    path, line, why = g.edges[(node, nxt)]
                    findings.append(Finding(
                        path, line, "lock-order", "cycle",
                        "lock acquisition cycle: " + " -> ".join(cycle) +
                        f" (closing edge: {why}); a concurrent interleaving "
                        "can deadlock"))
            elif nxt not in state:
                dfs(nxt)
        stack.pop()
        state[node] = 2

    for node in sorted(adj):
        if node not in state:
            dfs(node)
    return findings
