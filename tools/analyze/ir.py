"""Intermediate representation shared by the commsig-analyzer frontends.

Both frontends — the Clang AST-JSON walker (`clang_frontend.py`) and the
built-in token/scope parser (`cpplite.py`) — lower a translation unit to the
same `TuFacts` structure.  Passes consume only this IR, so every rule runs
identically regardless of which frontend produced the facts, and the facts
for a TU can be cached as plain JSON keyed by content hash.

The IR is deliberately coarse: names, spans, calls with literal arguments,
range-for loops, lock acquisitions, and declarations.  It captures exactly
what the four passes need and nothing the cache would bloat on.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Optional

IR_VERSION = 4  # bump to invalidate cached facts when the schema changes


@dataclass
class Call:
    """One call expression: `recv.name(args)` / `name(args)` / `A::name(...)`."""

    name: str                     # last identifier of the callee
    line: int
    recv: str = ""                # receiver expression text ("" for free calls)
    args: list[str] = field(default_factory=list)   # raw argument text
    # For each argument: the string-literal value when the argument is a
    # (possibly concatenated) string literal, else None.
    str_args: list[Optional[str]] = field(default_factory=list)
    is_stmt: bool = False         # full expression statement `foo(...);`
    depth: int = 0                # brace depth relative to function body


@dataclass
class RangeLoop:
    """`for (decl : seq)` — `seq_base` is the base identifier of `seq`."""

    seq_text: str
    seq_base: str
    line: int
    body_start: int = 0           # token index into Function.tokens
    body_end: int = 0
    subscripted: bool = False     # seq is `base[...]` (element of container)


@dataclass
class LockAcq:
    """A lock acquisition: RAII guard construction or a manual `.Lock()`."""

    mutex_text: str               # argument text, e.g. "mutex_" / "other.mu_"
    line: int
    depth: int = 0                # brace depth; held until depth closes
    kind: str = "raii"            # "raii" | "manual"
    release_line: int = 0         # line the guard's scope closes; 0 = held
                                  # to the end of the function


@dataclass
class Decl:
    """A local variable declaration inside a function body."""

    name: str
    type_text: str
    line: int
    init_call: str = ""           # callee name when initialised from a call


@dataclass
class Function:
    """One function definition with the facts extracted from its body."""

    name: str                     # unqualified name
    qual_class: str = ""          # enclosing / qualifying class, "" if free
    ret_type: str = ""
    start_line: int = 0
    end_line: int = 0
    excludes: list[str] = field(default_factory=list)   # EXCLUDES(mu) args
    requires: list[str] = field(default_factory=list)   # REQUIRES(mu) args
    calls: list[Call] = field(default_factory=list)
    loops: list[RangeLoop] = field(default_factory=list)
    locks: list[LockAcq] = field(default_factory=list)
    decls: list[Decl] = field(default_factory=list)
    # Flat body token text (identifiers, punctuation, literals) for the
    # passes' targeted scans (sorted-afterwards checks, ok()-guard checks).
    tokens: list[str] = field(default_factory=list)
    token_lines: list[int] = field(default_factory=list)

    def decl_type(self, name: str) -> str:
        for d in self.decls:
            if d.name == name:
                return d.type_text
        return ""


@dataclass
class FieldDecl:
    """A class data member, with its thread-safety annotation if any."""

    cls: str
    name: str
    type_text: str
    line: int
    guarded_by: str = ""          # GUARDED_BY(mu) argument text
    acquired_before: list[str] = field(default_factory=list)
    acquired_after: list[str] = field(default_factory=list)


@dataclass
class MethodDecl:
    """A method declaration (possibly body-less) with lock annotations."""

    cls: str
    name: str
    ret_type: str
    line: int
    excludes: list[str] = field(default_factory=list)
    requires: list[str] = field(default_factory=list)


@dataclass
class TuFacts:
    """Everything the passes need to know about one source file."""

    path: str                     # repo-relative, '/'-separated
    functions: list[Function] = field(default_factory=list)
    fields: list[FieldDecl] = field(default_factory=list)
    methods: list[MethodDecl] = field(default_factory=list)
    includes: list[str] = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps({"ir_version": IR_VERSION,
                           "facts": dataclasses.asdict(self)})

    @staticmethod
    def from_json(text: str) -> Optional["TuFacts"]:
        try:
            obj = json.loads(text)
        except ValueError:
            return None
        if obj.get("ir_version") != IR_VERSION:
            return None
        d = obj["facts"]
        tu = TuFacts(path=d["path"], includes=d.get("includes", []))
        for f in d.get("functions", []):
            fn = Function(
                name=f["name"], qual_class=f.get("qual_class", ""),
                ret_type=f.get("ret_type", ""),
                start_line=f.get("start_line", 0),
                end_line=f.get("end_line", 0),
                excludes=f.get("excludes", []),
                requires=f.get("requires", []),
                tokens=f.get("tokens", []),
                token_lines=f.get("token_lines", []))
            fn.calls = [Call(**c) for c in f.get("calls", [])]
            fn.loops = [RangeLoop(**l) for l in f.get("loops", [])]
            fn.locks = [LockAcq(**l) for l in f.get("locks", [])]
            fn.decls = [Decl(**dd) for dd in f.get("decls", [])]
            tu.functions.append(fn)
        tu.fields = [FieldDecl(**f) for f in d.get("fields", [])]
        tu.methods = [MethodDecl(**m) for m in d.get("methods", [])]
        return tu


@dataclass(frozen=True)
class Finding:
    """One analyzer diagnostic."""

    path: str
    line: int
    pass_name: str                # determinism | lock-order | obs-schema | result
    rule: str                     # short rule id within the pass
    message: str

    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.path}|{self.pass_name}|{self.rule}|{self.message}"

    def render(self) -> str:
        return (f"{self.path}:{self.line}: "
                f"[analyze-{self.pass_name}-{self.rule}] {self.message}")


class Project:
    """Merged cross-TU view handed to each pass."""

    def __init__(self, tus: list[TuFacts]):
        self.tus = tus
        # (class, method) -> MethodDecl, plus name-level index for receiver-
        # free resolution when the name is unambiguous across classes.
        self.methods: dict[tuple[str, str], MethodDecl] = {}
        self.methods_by_name: dict[str, list[MethodDecl]] = {}
        self.fields: dict[tuple[str, str], FieldDecl] = {}
        for tu in tus:
            for m in tu.methods:
                prev = self.methods.get((m.cls, m.name))
                if prev is None:
                    self.methods[(m.cls, m.name)] = m
                    self.methods_by_name.setdefault(m.name, []).append(m)
                else:
                    # Merge declaration and definition: annotations usually
                    # live only on the in-class declaration.
                    for e in m.excludes:
                        if e not in prev.excludes:
                            prev.excludes.append(e)
                    for r in m.requires:
                        if r not in prev.requires:
                            prev.requires.append(r)
                    if not prev.ret_type:
                        prev.ret_type = m.ret_type
            for f in tu.fields:
                self.fields[(f.cls, f.name)] = f

    def result_return_table(self) -> dict[str, set[str]]:
        """Function name -> set of return-type kinds seen across the project.

        Kinds are "result" (Result<T> / Status) and "other".  A name is safe
        to flag for a discarded return only when every declaration agrees.
        """
        table: dict[str, set[str]] = {}
        def add(name: str, ret: str) -> None:
            ret = ret.strip()
            changed = True
            while changed:
                changed = False
                for qual in ("static", "inline", "constexpr", "virtual",
                             "friend", "[[nodiscard]]"):
                    if ret.startswith(qual):
                        ret = ret[len(qual):].lstrip()
                        changed = True
            kind = ("result"
                    if ret.startswith(("Result<", "Result <", "Status"))
                    or "::Result<" in ret or ret.endswith("::Status")
                    else "other")
            table.setdefault(name, set()).add(kind)
        for tu in self.tus:
            for m in tu.methods:
                add(m.name, m.ret_type)
            for fn in tu.functions:
                add(fn.name, fn.ret_type)
        return table
