"""Built-in C++ token/scope frontend for commsig-analyzer.

Lowers a source file to the shared `TuFacts` IR without a compiler: a
hand-rolled lexer plus a single-pass structure scanner that understands the
subset of C++ this repo actually uses (namespaces, classes, member/free
function definitions, RAII lock guards, range-for, call expressions, local
declarations, and the COMMSIG_* thread-safety annotation macros).

This is the reference frontend: it has no toolchain dependency, runs on a
GCC-only host, and is what CI gates on.  The Clang AST-JSON frontend
(`clang_frontend.py`) produces the same IR with compiler-grade accuracy when
a clang binary is available.

It is a heuristic parser by design — macro-expanded or generated code could
confuse it — but it parses every file in src/ and tools/ today, and the
fixture suite in tests/tools/ pins the behaviours the passes rely on.
"""

from __future__ import annotations

from ir import (Call, Decl, FieldDecl, Function, LockAcq, MethodDecl,
                RangeLoop, TuFacts)

# --- Lexer -----------------------------------------------------------------

_PUNCT2 = {"::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
           "+=", "-=", "*=", "/=", "|=", "&=", "^=", "++", "--"}

_KEYWORDS_NOT_CALLS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "decltype", "static_assert", "static_cast", "dynamic_cast",
    "reinterpret_cast", "const_cast", "noexcept", "throw", "new", "delete",
    "assert", "defined", "alignas", "co_return", "co_await", "typeid",
}

_TYPE_KEYWORDS = {"const", "auto", "unsigned", "signed", "long", "short",
                  "int", "char", "bool", "float", "double", "void", "size_t",
                  "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t",
                  "int16_t", "int32_t", "int64_t", "struct", "class",
                  "typename", "volatile", "mutable", "static", "constexpr",
                  "inline", "extern", "thread_local", "wchar_t"}

_STMT_KEYWORDS = {"return", "if", "else", "for", "while", "do", "switch",
                  "case", "default", "break", "continue", "goto", "throw",
                  "delete", "new", "try", "catch", "using", "typedef",
                  "template", "public", "private", "protected", "friend",
                  "operator", "co_return", "co_yield", "co_await"}

_ANNOTATION_MACROS = {
    "COMMSIG_GUARDED_BY", "GUARDED_BY",
    "COMMSIG_PT_GUARDED_BY", "PT_GUARDED_BY",
    "COMMSIG_EXCLUDES", "EXCLUDES", "LOCKS_EXCLUDED",
    "COMMSIG_REQUIRES", "REQUIRES", "EXCLUSIVE_LOCKS_REQUIRED",
    "COMMSIG_ACQUIRE", "COMMSIG_RELEASE", "COMMSIG_RETURN_CAPABILITY",
    "COMMSIG_CAPABILITY", "COMMSIG_SCOPED_CAPABILITY",
    "COMMSIG_ACQUIRED_BEFORE", "ACQUIRED_BEFORE",
    "COMMSIG_ACQUIRED_AFTER", "ACQUIRED_AFTER",
}

_LOCK_GUARD_TYPES = {"MutexLock", "lock_guard", "unique_lock", "scoped_lock",
                     "shared_lock"}


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind   # "id" | "num" | "str" | "char" | "punct"
        self.text = text
        self.line = line

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Tok({self.kind},{self.text!r},{self.line})"


def tokenize(text: str) -> tuple[list[Tok], list[str]]:
    """Lexes `text`; returns (tokens, include targets)."""
    toks: list[Tok] = []
    includes: list[str] = []
    i, n, line = 0, len(text), 1
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            line += text.count("\n", i, j)
            i = j
            continue
        if c == "#" and at_line_start:
            # Preprocessor directive: record includes, swallow the rest
            # (honouring backslash continuations).
            j = i
            while j < n:
                k = text.find("\n", j)
                if k == -1:
                    k = n
                if text[max(j, k - 1):k] == "\\":
                    line += 1
                    j = k + 1
                    continue
                break
            directive = text[i:k]
            if directive.lstrip("# \t").startswith("include"):
                inc = directive.split("include", 1)[1].strip()
                includes.append(inc.strip('"<>'))
            line += directive.count("\n")
            i = k
            continue
        at_line_start = False
        if c == 'R' and text[i:i + 2] == 'R"':
            # Raw string literal R"delim( ... )delim"
            j = text.find("(", i + 2)
            if j != -1:
                delim = text[i + 2:j]
                end = text.find(")" + delim + '"', j + 1)
                if end != -1:
                    value = text[j + 1:end]
                    toks.append(Tok("str", value, line))
                    line += text.count("\n", i, end)
                    i = end + len(delim) + 2
                    continue
        if c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                elif text[j] == quote:
                    j += 1
                    break
                else:
                    j += 1
            raw = text[i + 1:max(i + 1, j - 1)]
            toks.append(Tok("str" if quote == '"' else "char", raw, line))
            line += text.count("\n", i, j)
            i = j
            continue
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            toks.append(Tok("id", text[i:j], line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "._'+-"
                             if text[j - 1] in "eEpP" or text[j] not in "+-"
                             else False):
                j += 1
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue
        two = text[i:i + 2]
        if two in _PUNCT2:
            toks.append(Tok("punct", two, line))
            i += 2
            continue
        toks.append(Tok("punct", c, line))
        i += 1
    return toks, includes


# --- Structure scanner -----------------------------------------------------

def _match(toks: list[Tok], i: int, open_c: str, close_c: str) -> int:
    """Index just past the bracket group opening at `i` (toks[i] == open_c)."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_c:
            depth += 1
        elif t == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _text(toks: list[Tok], lo: int, hi: int) -> str:
    parts: list[str] = []
    for t in toks[lo:hi]:
        if t.kind == "str":
            parts.append('"' + t.text + '"')
        else:
            parts.append(t.text)
    out = ""
    for p in parts:
        if out and (out[-1].isalnum() or out[-1] == "_") and \
                (p[0].isalnum() or p[0] == "_"):
            out += " "
        out += p
    return out


def _split_args(toks: list[Tok], lo: int, hi: int) -> list[tuple[int, int]]:
    """Splits the token span (inside parens) at top-level commas."""
    spans: list[tuple[int, int]] = []
    depth = 0
    start = lo
    for i in range(lo, hi):
        t = toks[i].text
        if t in "([{<" and not (t == "<" and toks[i].kind == "punct" and
                                _is_comparison(toks, i)):
            depth += 1
        elif t in ")]}>" and depth > 0 and not (
                t == ">" and _is_comparison(toks, i)):
            depth -= 1
        elif t == "," and depth == 0:
            spans.append((start, i))
            start = i + 1
    if hi > start:
        spans.append((start, hi))
    return spans


def _is_comparison(toks: list[Tok], i: int) -> bool:
    """Crude guard so `a < b` in an argument doesn't unbalance depth:
    treat < / > as brackets only when adjacent to an identifier that looks
    like a template name (starts uppercase or is a std type)."""
    if toks[i].text == "<":
        prev = toks[i - 1] if i > 0 else None
        return bool(prev and prev.kind == "id" and
                    (prev.text[0].isupper() or prev.text in (
                        "vector", "map", "set", "unordered_map",
                        "unordered_set", "pair", "span", "optional",
                        "unique_ptr", "shared_ptr", "function", "array",
                        "string", "basic_string", "atomic", "tuple",
                        "lock_guard", "unique_lock", "scoped_lock")))
    return True


class _Parser:
    def __init__(self, path: str, text: str):
        self.tu = TuFacts(path=path)
        self.toks, self.tu.includes = tokenize(text)

    # -- declarations at namespace / class scope ---------------------------

    def parse(self) -> TuFacts:
        self._scan_decls(0, len(self.toks), cls="")
        return self.tu

    def _scan_decls(self, lo: int, hi: int, cls: str) -> None:
        i = lo
        toks = self.toks
        while i < hi:
            t = toks[i]
            if t.kind == "id" and t.text == "namespace":
                j = i + 1
                while j < hi and toks[j].text not in ("{", ";", "="):
                    j += 1
                if j < hi and toks[j].text == "{":
                    end = _match(toks, j, "{", "}")
                    self._scan_decls(j + 1, end - 1, cls)
                    i = end
                else:
                    i = j + 1
                continue
            if t.kind == "id" and t.text in ("class", "struct"):
                name_at = self._class_name_at(i + 1, hi)
                if name_at != -1:
                    i = self._scan_class(i, name_at, hi, cls)
                    continue
            if t.kind == "id" and t.text == "enum":
                j = i
                while j < hi and toks[j].text not in ("{", ";"):
                    j += 1
                i = _match(toks, j, "{", "}") if (
                    j < hi and toks[j].text == "{") else j + 1
                continue
            if t.kind == "id" and t.text in ("using", "typedef", "friend",
                                             "static_assert"):
                while i < hi and toks[i].text != ";":
                    i += 1
                i += 1
                continue
            if t.kind == "id" and t.text == "template":
                if i + 1 < hi and toks[i + 1].text == "<":
                    depth = 0
                    j = i + 1
                    while j < hi:
                        if toks[j].text == "<":
                            depth += 1
                        elif toks[j].text == ">":
                            depth -= 1
                            if depth == 0:
                                break
                        elif toks[j].text == ">>":
                            depth -= 2
                            if depth <= 0:
                                break
                        j += 1
                    i = j + 1
                else:
                    i += 1
                continue
            if t.text in ("public", "private", "protected") and \
                    i + 1 < hi and toks[i + 1].text == ":":
                i += 2
                continue
            if t.text == ";" or t.text == "}":
                i += 1
                continue
            i = self._scan_one_decl(i, hi, cls)

    def _class_name_at(self, j: int, hi: int) -> int:
        """Index of the class name after `class`, skipping [[attr]] blocks
        and annotation macros like COMMSIG_CAPABILITY("mutex")."""
        toks = self.toks
        while j < hi:
            t = toks[j]
            if t.text == "[" and j + 1 < hi and toks[j + 1].text == "[":
                j = _match(toks, j, "[", "]")
                continue
            if t.kind == "id" and (t.text in _ANNOTATION_MACROS or
                                   t.text == "alignas"):
                j += 1
                if j < hi and toks[j].text == "(":
                    j = _match(toks, j, "(", ")")
                continue
            return j if t.kind == "id" else -1
        return -1

    def _scan_class(self, i: int, name_at: int, hi: int, outer: str) -> int:
        toks = self.toks
        name = toks[name_at].text
        j = name_at + 1
        # Annotation macros / final / base clause before the body.
        while j < hi and toks[j].text not in ("{", ";"):
            if toks[j].text == "(":
                j = _match(toks, j, "(", ")")
            else:
                j += 1
        if j >= hi or toks[j].text == ";":
            return j + 1  # forward declaration
        end = _match(toks, j, "{", "}")
        self._scan_decls(j + 1, end - 1, name)
        return end

    def _scan_one_decl(self, i: int, hi: int, cls: str) -> int:
        """Parses one namespace/class-scope declaration starting at `i`.

        Returns the index just past it.  Emits Function / MethodDecl /
        FieldDecl facts as appropriate.
        """
        toks = self.toks
        j = i
        paren_at = -1          # first top-level '(' owned by a plain id
        annot: dict[str, list[str]] = {}
        while j < hi:
            t = toks[j].text
            if t == "(":
                owner = toks[j - 1].text if j > i else ""
                if owner in _ANNOTATION_MACROS:
                    close = _match(toks, j, "(", ")")
                    args = [_text(toks, a, b)
                            for a, b in _split_args(toks, j + 1, close - 1)]
                    annot.setdefault(owner, []).extend(a for a in args if a)
                    j = close
                    continue
                if paren_at == -1 and toks[j - 1].kind == "id" and j > i:
                    paren_at = j
                j = _match(toks, j, "(", ")")
                continue
            if t == "{":
                # Function body, or a brace initialiser on a field.
                if paren_at != -1:
                    return self._finish_function(i, paren_at, j, hi, cls,
                                                 annot)
                j = _match(toks, j, "{", "}")
                if j < hi and toks[j].text == ";":
                    j += 1
                self._maybe_field(i, j, cls, annot)
                return j
            if t == ";":
                if paren_at != -1:
                    self._emit_method_decl(i, paren_at, cls, annot)
                else:
                    self._maybe_field(i, j, cls, annot)
                return j + 1
            if t == "=":
                # `= default` / `= delete` / field initialiser.
                while j < hi and toks[j].text != ";":
                    if toks[j].text in "([{":
                        j = _match(toks, j, toks[j].text,
                                   {"(": ")", "[": "]", "{": "}"}[toks[j].text])
                    else:
                        j += 1
                if paren_at != -1:
                    self._emit_method_decl(i, paren_at, cls, annot)
                else:
                    self._maybe_field(i, j, cls, annot)
                return j + 1
            j += 1
        return hi

    def _callee_chain(self, paren_at: int, lo: int) -> tuple[str, str, int]:
        """(name, qual_class, chain_start) for the callee ending at `paren_at`."""
        toks = self.toks
        k = paren_at - 1
        if toks[k].kind != "id":
            return "", "", k
        name = toks[k].text
        qual = ""
        start = k
        while start - 2 >= lo and toks[start - 1].text == "::" and \
                toks[start - 2].kind == "id":
            if not qual:
                qual = toks[start - 2].text
            start -= 2
        return name, qual, start

    def _emit_method_decl(self, lo: int, paren_at: int, cls: str,
                          annot: dict[str, list[str]]) -> None:
        toks = self.toks
        name, qual, start = self._callee_chain(paren_at, lo)
        if not name or name in _STMT_KEYWORDS:
            return
        ret = _text(toks, lo, start)
        self.tu.methods.append(MethodDecl(
            cls=qual or cls, name=name, ret_type=ret, line=toks[paren_at].line,
            excludes=(annot.get("COMMSIG_EXCLUDES", []) +
                      annot.get("EXCLUDES", []) +
                      annot.get("LOCKS_EXCLUDED", [])),
            requires=(annot.get("COMMSIG_REQUIRES", []) +
                      annot.get("REQUIRES", []) +
                      annot.get("EXCLUSIVE_LOCKS_REQUIRED", []))))

    def _maybe_field(self, lo: int, hi: int, cls: str,
                     annot: dict[str, list[str]]) -> None:
        if not cls:
            return
        toks = self.toks
        # Field name: last plain identifier before '=' / '{' / annotation.
        name = ""
        name_at = -1
        k = lo
        while k < hi:
            t = toks[k]
            if t.text in ("=", "{"):
                break
            if t.text == "[":
                k = _match(toks, k, "[", "]")
                continue
            if t.kind == "id" and t.text in _ANNOTATION_MACROS:
                break
            if t.kind == "id" and t.text not in _TYPE_KEYWORDS:
                name, name_at = t.text, k
            k += 1
        if not name or name_at <= lo:
            return
        type_text = _text(toks, lo, name_at)
        if not type_text:
            return
        guarded = (annot.get("COMMSIG_GUARDED_BY", []) +
                   annot.get("GUARDED_BY", []))
        self.tu.fields.append(FieldDecl(
            cls=cls, name=name, type_text=type_text, line=toks[name_at].line,
            guarded_by=guarded[0] if guarded else "",
            acquired_before=(annot.get("COMMSIG_ACQUIRED_BEFORE", []) +
                             annot.get("ACQUIRED_BEFORE", [])),
            acquired_after=(annot.get("COMMSIG_ACQUIRED_AFTER", []) +
                            annot.get("ACQUIRED_AFTER", []))))

    def _finish_function(self, lo: int, paren_at: int, brace_at: int,
                         hi: int, cls: str,
                         annot: dict[str, list[str]]) -> int:
        toks = self.toks
        name, qual, start = self._callee_chain(paren_at, lo)
        body_end = _match(toks, brace_at, "{", "}")
        if not name or name in _STMT_KEYWORDS:
            return body_end
        fn = Function(
            name=name, qual_class=qual or cls,
            ret_type=_text(toks, lo, start),
            start_line=toks[lo].line, end_line=toks[body_end - 1].line,
            excludes=(annot.get("COMMSIG_EXCLUDES", []) +
                      annot.get("EXCLUDES", []) +
                      annot.get("LOCKS_EXCLUDED", [])),
            requires=(annot.get("COMMSIG_REQUIRES", []) +
                      annot.get("REQUIRES", []) +
                      annot.get("EXCLUSIVE_LOCKS_REQUIRED", [])))
        self.tu.methods.append(MethodDecl(
            cls=fn.qual_class, name=name, ret_type=fn.ret_type,
            line=toks[paren_at].line, excludes=list(fn.excludes),
            requires=list(fn.requires)))
        # Parameters double as declarations so receiver types resolve.
        close = _match(toks, paren_at, "(", ")")
        for a, b in _split_args(toks, paren_at + 1, close - 1):
            if b - a >= 2 and toks[b - 1].kind == "id" and \
                    toks[b - 1].text not in _TYPE_KEYWORDS:
                fn.decls.append(Decl(name=toks[b - 1].text,
                                     type_text=_text(toks, a, b - 1),
                                     line=toks[b - 1].line))
        self._scan_body(fn, brace_at + 1, body_end - 1)
        self.tu.functions.append(fn)
        return body_end

    # -- function bodies ---------------------------------------------------

    def _scan_body(self, fn: Function, lo: int, hi: int) -> None:
        toks = self.toks
        fn.tokens = [t.text if t.kind != "str" else '"' + t.text + '"'
                     for t in toks[lo:hi]]
        fn.token_lines = [t.line for t in toks[lo:hi]]
        depth = 0
        stmt_start = True
        i = lo
        while i < hi:
            t = toks[i]
            if t.text == "{":
                depth += 1
                stmt_start = True
                i += 1
                continue
            if t.text == "}":
                depth -= 1
                # RAII guards declared in the closing scope are released
                # here; locks at depth <= new depth stay held.
                for l in fn.locks:
                    if l.release_line == 0 and l.depth > depth:
                        l.release_line = t.line
                stmt_start = True
                i += 1
                continue
            if t.text == ";":
                stmt_start = True
                i += 1
                continue
            if t.kind == "id" and t.text == "for" and i + 1 < hi and \
                    toks[i + 1].text == "(":
                close = _match(toks, i + 1, "(", ")")
                self._maybe_range_for(fn, i + 1, close, lo, depth)
                stmt_start = True
                i = close
                continue
            if stmt_start and t.kind == "id":
                self._maybe_local_decl(fn, i, hi, depth)
            if t.kind == "id" and i + 1 < hi and toks[i + 1].text == "(" \
                    and t.text not in _KEYWORDS_NOT_CALLS:
                self._record_call(fn, i, lo, hi, depth, stmt_start)
            if t.text not in ("else", "do", "try"):
                stmt_start = False
            i += 1

    def _maybe_range_for(self, fn: Function, open_at: int, close: int,
                         body_lo: int, depth: int) -> None:
        toks = self.toks
        colon = -1
        pdepth = 0
        for k in range(open_at, close):
            t = toks[k].text
            if t == "(":
                pdepth += 1
            elif t == ")":
                pdepth -= 1
            elif t == ":" and pdepth == 1:
                colon = k
                break
        if colon == -1:
            return
        seq_lo, seq_hi = colon + 1, close - 1
        seq_text = _text(toks, seq_lo, seq_hi)
        base = ""
        subscripted = "[" in seq_text
        for k in range(seq_lo, seq_hi):
            if toks[k].kind == "id" and toks[k].text not in _TYPE_KEYWORDS:
                base = toks[k].text
                break
        body_start = close
        if body_start < len(toks) and toks[body_start].text == "{":
            body_end = _match(toks, body_start, "{", "}")
        else:
            body_end = body_start
            while body_end < len(toks) and toks[body_end].text != ";":
                if toks[body_end].text == "(":
                    body_end = _match(toks, body_end, "(", ")")
                else:
                    body_end += 1
        fn.loops.append(RangeLoop(
            seq_text=seq_text, seq_base=base, line=toks[open_at].line,
            body_start=body_start - body_lo, body_end=body_end - body_lo,
            subscripted=subscripted))

    def _maybe_local_decl(self, fn: Function, i: int, hi: int,
                          depth: int) -> None:
        toks = self.toks
        if toks[i].text in _STMT_KEYWORDS or \
                toks[i].text in _KEYWORDS_NOT_CALLS:
            if toks[i].text not in _TYPE_KEYWORDS:
                return
        j = i
        last_id = -1
        ids = 0
        while j < hi:
            t = toks[j]
            if t.kind == "id":
                if t.text in _ANNOTATION_MACROS:
                    break
                last_id = j
                ids += 1
                j += 1
                continue
            if t.text == "<" and _is_comparison(toks, j):
                d = 0
                while j < hi:
                    if toks[j].text == "<":
                        d += 1
                    elif toks[j].text == ">":
                        d -= 1
                        if d == 0:
                            j += 1
                            break
                    elif toks[j].text == ">>":
                        d -= 2
                        if d <= 0:
                            j += 1
                            break
                    elif toks[j].text in (";", "{", ")"):
                        return
                    j += 1
                continue
            if t.text in ("::", "&", "*", "const"):
                j += 1
                continue
            break
        if last_id == -1 or ids < 2 or j >= hi:
            return
        term = toks[j].text
        if term not in ("=", ";", "(", "{"):
            return
        name = toks[last_id].text
        type_text = _text(toks, i, last_id)
        if not type_text or type_text in ("return",):
            return
        # `std::sort(...)` / `Foo::Bar(...)` at statement start is a
        # qualified call, not a declaration.
        if term == "(" and type_text.rstrip().endswith("::"):
            return
        init_call = ""
        if term in ("=", "(", "{"):
            k = j if term != "=" else j + 1
            limit = min(hi, k + 12)
            while k < limit:
                if toks[k].kind == "id" and k + 1 < hi and \
                        toks[k + 1].text == "(" and \
                        toks[k].text not in _KEYWORDS_NOT_CALLS:
                    init_call = toks[k].text
                    break
                if toks[k].text in (";", "{"):
                    break
                k += 1
        d = Decl(name=name, type_text=type_text, line=toks[last_id].line,
                 init_call=init_call)
        fn.decls.append(d)
        base = type_text.split("<")[0].split("::")[-1].strip()
        if base in _LOCK_GUARD_TYPES and term in ("(", "{"):
            close = _match(toks, j, term, ")" if term == "(" else "}")
            args = _split_args(toks, j + 1, close - 1)
            if args:
                mutex = _text(toks, *args[0]).lstrip("&* ")
                fn.locks.append(LockAcq(mutex_text=mutex,
                                        line=toks[j].line, depth=depth))

    def _record_call(self, fn: Function, i: int, lo: int, hi: int,
                     depth: int, stmt_start_hint: bool) -> None:
        toks = self.toks
        name = toks[i].text
        open_at = i + 1
        close = _match(toks, open_at, "(", ")")
        # Receiver: walk the `a.b->c::` chain backwards.
        recv_start = i
        k = i - 1
        while k > lo:
            t = toks[k].text
            if t in (".", "->", "::"):
                k -= 1
                if k > lo and toks[k].text in (")", "]"):
                    # match backwards over the bracket group
                    target = "(" if toks[k].text == ")" else "["
                    d = 0
                    while k > lo:
                        if toks[k].text in (")", "]"):
                            d += 1
                        elif toks[k].text in ("(", "["):
                            d -= 1
                            if d == 0:
                                break
                        k -= 1
                    k -= 1
                    recv_start = k + 1
                    continue
                if k > lo and (toks[k].kind == "id" or
                               toks[k].text == "this"):
                    recv_start = k
                    k -= 1
                    continue
                break
            break
        recv = _text(toks, recv_start, i - 1) if recv_start < i else ""
        before = toks[recv_start - 1].text if recv_start - 1 >= lo else ";"
        is_stmt = before in (";", "{", "}") and close < hi and \
            toks[close].text == ";"
        spans = _split_args(toks, open_at + 1, close - 1)
        args: list[str] = []
        str_args: list[str | None] = []
        for a, b in spans:
            args.append(_text(toks, a, b))
            if b > a and all(toks[x].kind == "str" for x in range(a, b)):
                str_args.append("".join(toks[x].text for x in range(a, b)))
            else:
                str_args.append(None)
        fn.calls.append(Call(name=name, line=toks[i].line, recv=recv,
                             args=args, str_args=str_args, is_stmt=is_stmt,
                             depth=depth))
        if name in ("Lock", "lock") and recv and not args:
            fn.locks.append(LockAcq(mutex_text=recv, line=toks[i].line,
                                    depth=depth, kind="manual"))
        if name in ("Unlock", "unlock") and recv and not args:
            for l in fn.locks:
                if l.kind == "manual" and l.mutex_text == recv and \
                        l.release_line == 0:
                    l.release_line = toks[i].line
                    break


def parse_file(path: str, rel: str, text: str | None = None) -> TuFacts:
    if text is None:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    return _Parser(rel, text).parse()
