#!/usr/bin/env python3
"""commsig-analyzer: cross-TU invariant analysis for the commsig tree.

Four passes over a shared per-TU fact IR:

  determinism   hash-order / randomness / clock hazards on persisted paths
  lock-order    lock acquisition graph from annotations + nesting; cycles
  obs-schema    metric / span / log-event / fail-point names vs the
                checked-in registry (docs/obs_schema.json)
  result        discarded Result/Status returns, unchecked value() access

Frontends (--frontend):

  clang         per-TU `clang++ -fsyntax-only -Xclang -ast-dump=json` using
                the command lines from compile_commands.json; distilled
                facts are cached by content hash under --cache-dir
  cpplite       built-in token/scope parser; no toolchain dependency
  auto          clang when a clang binary is found, else cpplite (default)

Workflow:

  tools/analyze/analyze.py                      # analyze src/ and tools/
  tools/analyze/analyze.py --passes result      # one pass
  tools/analyze/analyze.py --update-schema      # refresh obs registry
  tools/analyze/analyze.py --write-baseline     # accept current findings
  cmake --build build --target analyze          # the same, via CMake

Suppress a single site with `// NOLINT(analyze-<pass>)` or
`// NOLINT(analyze-<pass>-<rule>)` on the flagged line or the line above.
Known legacy findings live in tools/analyze/baseline.json (fingerprints are
line-independent, so pure moves don't churn it); the analyzer fails only on
findings not in the baseline.  The baseline ships empty — keep it that way.

Exit codes: 0 clean, 1 new findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpplite  # noqa: E402
import clang_frontend  # noqa: E402
from ir import Finding, Project, TuFacts  # noqa: E402
from passes import ALL_PASSES  # noqa: E402
from passes import obs_schema as obs_schema_pass  # noqa: E402

_SCAN_DIRS = ("src",)
_SCAN_TOOL_GLOB = "tools"
_SUPPRESS = re.compile(r"NOLINT\(([^)]*)\)")


class PassContext:
    def __init__(self, root: str, schema_path: str):
        self.root = root
        self.schema_path = schema_path
        self.schema_rel = os.path.relpath(schema_path, root).replace(
            os.sep, "/")


def source_files(root: str) -> list[str]:
    """Repo-relative analysis targets: src/**/*.{h,cc} + tools/*.cc."""
    out: list[str] = []
    for top in _SCAN_DIRS:
        for dirpath, dirs, names in os.walk(os.path.join(root, top)):
            dirs.sort()
            for n in sorted(names):
                if n.endswith((".h", ".cc")):
                    out.append(os.path.relpath(os.path.join(dirpath, n),
                                               root).replace(os.sep, "/"))
    tools_dir = os.path.join(root, _SCAN_TOOL_GLOB)
    if os.path.isdir(tools_dir):
        for n in sorted(os.listdir(tools_dir)):
            if n.endswith(".cc"):
                out.append(f"tools/{n}")
    return out


def load_facts(args, root: str, files: list[str]) -> tuple[list[TuFacts], str]:
    """Facts for every file, plus the frontend actually used."""
    frontend = args.frontend
    clang = ""
    if frontend in ("auto", "clang"):
        clang = clang_frontend.find_clang(args.clang)
        if not clang and frontend == "clang":
            print("analyze: no clang binary found (tried --clang and PATH); "
                  "rerun with --frontend cpplite", file=sys.stderr)
            sys.exit(2)
        frontend = "clang" if clang else "cpplite"
    if frontend == "cpplite":
        return [cpplite.parse_file(os.path.join(root, f), f)
                for f in files], "cpplite"
    cc_path = args.compile_commands or os.path.join(
        args.build_dir, "compile_commands.json")
    if not os.path.isfile(cc_path):
        print(f"analyze: {cc_path} not found; configure the build first "
              "(cmake -B build -S .) or pass --compile-commands",
              file=sys.stderr)
        sys.exit(2)
    commands = clang_frontend.load_compile_commands(cc_path)
    version = clang_frontend.clang_version(clang)
    tus: list[TuFacts] = []
    for f in files:
        abs_src = os.path.join(root, f)
        entry = commands.get(os.path.normpath(abs_src))
        if entry is None:
            # Headers and TUs outside the build graph: the built-in
            # frontend still produces the shared IR for them.
            tus.append(cpplite.parse_file(abs_src, f))
            continue
        tu = clang_frontend.parse_file(clang, abs_src, f, entry,
                                       args.cache_dir, root, version)
        if tu is None:
            print(f"analyze: warning: clang AST dump failed for {f}; "
                  "falling back to cpplite for this TU", file=sys.stderr)
            tu = cpplite.parse_file(abs_src, f)
        tus.append(tu)
    return tus, "clang"


def suppressed(root: str, finding: Finding) -> bool:
    """NOLINT(analyze-<pass>[-<rule>]) on the finding line or the line above."""
    path = os.path.join(root, finding.path)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.readlines()
    except OSError:
        return False
    tags = {f"analyze-{finding.pass_name}",
            f"analyze-{finding.pass_name}-{finding.rule}"}
    for lineno in (finding.line, finding.line - 1):
        if 1 <= lineno <= len(lines):
            m = _SUPPRESS.search(lines[lineno - 1])
            if m and tags & {t.strip() for t in m.group(1).split(",")}:
                return True
    return False


def load_baseline(path: str) -> set[str]:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
        return set(data.get("fingerprints", []))
    except (OSError, ValueError):
        return set()


def main() -> int:
    ap = argparse.ArgumentParser(
        prog="analyze.py",
        description="cross-TU invariant analysis (determinism, lock order, "
                    "obs schema, Result discipline)")
    repo_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--root", default=repo_root)
    ap.add_argument("--build-dir", default=os.path.join(repo_root, "build"))
    ap.add_argument("--compile-commands", default="")
    ap.add_argument("--frontend", choices=("auto", "clang", "cpplite"),
                    default="auto")
    ap.add_argument("--clang", default="",
                    help="clang++ binary for the clang frontend")
    ap.add_argument("--cache-dir",
                    default=os.path.join(repo_root, "build",
                                         "analyze-cache"),
                    help="facts cache for the clang frontend")
    ap.add_argument("--passes", default="all",
                    help="comma list of: " + ",".join(ALL_PASSES))
    ap.add_argument("--baseline",
                    default=os.path.join(repo_root, "tools", "analyze",
                                         "baseline.json"))
    ap.add_argument("--write-baseline", action="store_true",
                    help="accept all current findings into the baseline")
    ap.add_argument("--schema",
                    default=os.path.join(repo_root, "docs",
                                         "obs_schema.json"))
    ap.add_argument("--update-schema", action="store_true",
                    help="regenerate docs/obs_schema.json from call sites")
    ap.add_argument("--list-observables", action="store_true",
                    help="print every extracted observable name and exit")
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    wanted = (list(ALL_PASSES) if args.passes == "all"
              else [p.strip() for p in args.passes.split(",") if p.strip()])
    for p in wanted:
        if p not in ALL_PASSES:
            print(f"analyze: unknown pass '{p}' (have: "
                  f"{', '.join(ALL_PASSES)})", file=sys.stderr)
            return 2

    files = source_files(root)
    tus, frontend = load_facts(args, root, files)
    project = Project(tus)
    ctx = PassContext(root, args.schema)

    if args.list_observables:
        used, _ = obs_schema_pass.extract(project)
        for category in obs_schema_pass.SCHEMA_CATEGORIES:
            for name in sorted(used[category]):
                print(f"{category}\t{name}")
        return 0
    if args.update_schema:
        schema = obs_schema_pass.build_schema(project)
        with open(args.schema, "w", encoding="utf-8") as f:
            json.dump(schema, f, indent=2, sort_keys=False)
            f.write("\n")
        print(f"analyze: wrote {ctx.schema_rel}")
        return 0

    findings: list[Finding] = []
    for p in wanted:
        findings.extend(ALL_PASSES[p](project, ctx))
    findings = [f for f in findings if not suppressed(root, f)]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if args.write_baseline:
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump({"comment": "Accepted legacy findings; keep empty. "
                                  "Regenerate with --write-baseline.",
                       "fingerprints":
                           sorted(f2.fingerprint() for f2 in findings)},
                      f, indent=2)
            f.write("\n")
        print(f"analyze: baselined {len(findings)} finding(s)")
        return 0

    baseline = load_baseline(args.baseline)
    new = [f for f in findings if f.fingerprint() not in baseline]
    for f in new:
        print(f.render())
    known = len(findings) - len(new)
    summary = (f"analyze[{frontend}]: {len(files)} files, "
               f"{', '.join(wanted)}: {len(new)} new finding(s)")
    if known:
        summary += f", {known} baselined"
    print(summary, file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
