"""Clang AST-JSON frontend for commsig-analyzer.

Obtains a per-TU AST by running the TU's own command line from
`compile_commands.json` with `-fsyntax-only -Xclang -ast-dump=json`, then
walks the JSON into the shared `TuFacts` IR.  Raw dumps run to hundreds of
megabytes, so only the distilled facts are cached: the cache key is the
content hash of the preprocessed inputs (main file + repo headers) combined
with the compiler identity and flags, so edits, flag changes, and compiler
upgrades each invalidate exactly the TUs they affect.

This frontend needs a clang binary (gcc has no `-ast-dump=json`).  The
driver falls back to the built-in `cpplite` frontend when none is found, so
`--target analyze` works on a GCC-only host; CI runs both, gating on the
frontend it can verify.
"""

from __future__ import annotations

import hashlib
import json
import os
import shlex
import subprocess

from ir import (IR_VERSION, Call, Decl, FieldDecl, Function, LockAcq,
                MethodDecl, RangeLoop, TuFacts)

_LOCK_GUARD_TYPES = ("MutexLock", "lock_guard", "unique_lock", "scoped_lock",
                     "shared_lock")

# Clang spells thread-safety attributes with these AST node kinds.
_ATTR_KINDS = {
    "GuardedByAttr": "guarded_by",
    "LocksExcludedAttr": "excludes",
    "ExclusiveLocksRequiredAttr": "requires",
    "RequiresCapabilityAttr": "requires",
    "AcquiredBeforeAttr": "acquired_before",
    "AcquiredAfterAttr": "acquired_after",
}


def find_clang(explicit: str = "") -> str:
    """Absolute path of a usable clang++, or ""."""
    candidates = [explicit] if explicit else []
    candidates += ["clang++", "clang++-18", "clang++-17", "clang++-16",
                   "clang++-15", "clang++-14", "clang"]
    for c in candidates:
        if not c:
            continue
        path = c if os.path.isabs(c) else _which(c)
        if not path:
            continue
        try:
            out = subprocess.run([path, "--version"], capture_output=True,
                                 text=True, timeout=30)
        except OSError:
            continue
        if out.returncode == 0 and "clang" in out.stdout.lower():
            return path
    return ""


def _which(name: str) -> str:
    for d in os.environ.get("PATH", "").split(os.pathsep):
        p = os.path.join(d, name)
        if os.path.isfile(p) and os.access(p, os.X_OK):
            return p
    return ""


def clang_version(clang: str) -> str:
    out = subprocess.run([clang, "--version"], capture_output=True, text=True)
    return out.stdout.splitlines()[0].strip() if out.stdout else "unknown"


def load_compile_commands(path: str) -> dict[str, dict]:
    """Maps absolute source path -> compile-command entry."""
    with open(path, encoding="utf-8") as f:
        entries = json.load(f)
    table: dict[str, dict] = {}
    for e in entries:
        src = e.get("file", "")
        if not os.path.isabs(src):
            src = os.path.normpath(os.path.join(e.get("directory", "."), src))
        table[os.path.normpath(src)] = e
    return table


def _tu_args(entry: dict) -> list[str]:
    if "arguments" in entry:
        args = list(entry["arguments"])
    else:
        args = shlex.split(entry.get("command", ""))
    out: list[str] = []
    skip = False
    for a in args[1:]:
        if skip:
            skip = False
            continue
        if a in ("-o", "-MF", "-MT", "-MQ"):
            skip = True
            continue
        if a in ("-c", "-MD", "-MMD", "-MP") or a.endswith((".cc", ".cpp",
                                                            ".cxx", ".o")):
            continue
        out.append(a)
    return out


def cache_key(src: str, entry: dict, repo_root: str, version: str) -> str:
    """Content hash covering the TU, every repo header, and the flags."""
    h = hashlib.sha256()
    h.update(f"ir={IR_VERSION};clang={version};".encode())
    h.update(" ".join(_tu_args(entry)).encode())
    with open(src, "rb") as f:
        h.update(f.read())
    # Repo headers are few and small; hashing them all keeps the key exact
    # without running the preprocessor.
    src_dir = os.path.join(repo_root, "src")
    for dirpath, _, names in sorted(os.walk(src_dir)):
        for n in sorted(names):
            if n.endswith(".h"):
                p = os.path.join(dirpath, n)
                h.update(p.encode())
                with open(p, "rb") as f:
                    h.update(f.read())
    return h.hexdigest()


def dump_ast(clang: str, src: str, entry: dict) -> dict | None:
    cmd = [clang] + _tu_args(entry) + [
        "-fsyntax-only", "-Wno-everything",
        "-Xclang", "-ast-dump=json", src]
    proc = subprocess.run(cmd, capture_output=True, text=True,
                          cwd=entry.get("directory", "."))
    if not proc.stdout:
        return None
    try:
        return json.loads(proc.stdout)
    except ValueError:
        return None


# --- AST walk --------------------------------------------------------------

class _Walker:
    """Walks a clang `-ast-dump=json` tree into TuFacts.

    Clang omits repeated file/line fields in locations ("the previous value
    still applies"), so the walker threads current-file / current-line state
    through the traversal.
    """

    def __init__(self, path: str, abs_src: str):
        self.tu = TuFacts(path=path)
        self.abs_src = os.path.normpath(abs_src)
        self.cur_file = ""
        self.cur_line = 0

    def _loc(self, node: dict) -> tuple[str, int]:
        loc = node.get("loc") or {}
        if "expansionLoc" in loc:
            loc = loc["expansionLoc"]
        if "file" in loc:
            self.cur_file = os.path.normpath(loc["file"])
        if "line" in loc:
            self.cur_line = loc["line"]
        return self.cur_file, self.cur_line

    def _range_line(self, node: dict) -> int:
        rng = (node.get("range") or {}).get("begin") or {}
        if "expansionLoc" in rng:
            rng = rng["expansionLoc"]
        if "file" in rng:
            self.cur_file = os.path.normpath(rng["file"])
        if "line" in rng:
            self.cur_line = rng["line"]
        return self.cur_line

    def _in_main_file(self) -> bool:
        return self.cur_file in ("", self.abs_src)

    def walk(self, root: dict) -> TuFacts:
        for child in root.get("inner", []):
            self._decl(child, cls="")
        return self.tu

    def _decl(self, node: dict, cls: str) -> None:
        kind = node.get("kind", "")
        self._loc(node)
        if kind in ("NamespaceDecl", "LinkageSpecDecl", "ExportDecl"):
            for c in node.get("inner", []):
                self._decl(c, cls)
            return
        if kind in ("CXXRecordDecl", "ClassTemplateDecl",
                    "ClassTemplateSpecializationDecl"):
            name = node.get("name", cls)
            for c in node.get("inner", []):
                self._decl(c, name or cls)
            return
        if kind == "FieldDecl" and self._in_main_file():
            self._field(node, cls)
            return
        if kind in ("FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
                    "CXXDestructorDecl", "FunctionTemplateDecl"):
            if kind == "FunctionTemplateDecl":
                for c in node.get("inner", []):
                    if c.get("kind", "").endswith(("FunctionDecl",
                                                   "MethodDecl")):
                        self._function(c, cls)
                return
            self._function(node, cls)

    def _attrs(self, node: dict) -> dict[str, list[str]]:
        out: dict[str, list[str]] = {}
        for c in node.get("inner", []):
            slot = _ATTR_KINDS.get(c.get("kind", ""))
            if slot:
                args = [self._expr_text(a) for a in c.get("inner", [])]
                out.setdefault(slot, []).extend(a for a in args if a)
        return out

    def _field(self, node: dict, cls: str) -> None:
        _, line = self._loc(node)
        attrs = self._attrs(node)
        self.tu.fields.append(FieldDecl(
            cls=cls, name=node.get("name", ""),
            type_text=(node.get("type") or {}).get("qualType", ""),
            line=line,
            guarded_by=(attrs.get("guarded_by") or [""])[0],
            acquired_before=attrs.get("acquired_before", []),
            acquired_after=attrs.get("acquired_after", [])))

    def _function(self, node: dict, cls: str) -> None:
        file, line = self._loc(node)
        in_main = self._in_main_file()
        name = node.get("name", "")
        qual = (node.get("type") or {}).get("qualType", "")
        ret = qual.split("(")[0].strip() if "(" in qual else ""
        attrs = self._attrs(node)
        if name:
            self.tu.methods.append(MethodDecl(
                cls=cls, name=name, ret_type=ret, line=line,
                excludes=attrs.get("excludes", []),
                requires=attrs.get("requires", [])))
        body = None
        for c in node.get("inner", []):
            if c.get("kind") == "CompoundStmt":
                body = c
        if body is None or not in_main or not name:
            return
        fn = Function(name=name, qual_class=cls, ret_type=ret,
                      start_line=line, end_line=line,
                      excludes=attrs.get("excludes", []),
                      requires=attrs.get("requires", []))
        for c in node.get("inner", []):
            if c.get("kind") == "ParmVarDecl" and c.get("name"):
                fn.decls.append(Decl(
                    name=c["name"],
                    type_text=(c.get("type") or {}).get("qualType", ""),
                    line=line))
        self._stmt(body, fn, depth=0)
        self._collect_strings(body, fn)
        fn.end_line = max([fn.start_line] + [c.line for c in fn.calls] +
                          [l.line for l in fn.loops])
        self.tu.functions.append(fn)

    def _collect_strings(self, node: dict, fn: Function) -> None:
        """Every string literal in the body lands in fn.tokens, mirroring
        cpplite; initializer-list literals (PreRegisterCoreMetrics' name
        tables) are reachable no other way."""
        if node.get("kind") == "StringLiteral":
            v = node.get("value", "")
            if isinstance(v, str):
                fn.tokens.append('"' + v.strip('"') + '"')
                fn.token_lines.append(self.cur_line)
        for c in node.get("inner", []):
            self._collect_strings(c, fn)

    def _stmt(self, node: dict, fn: Function, depth: int) -> None:
        kind = node.get("kind", "")
        if kind == "CompoundStmt":
            for c in node.get("inner", []):
                if c.get("kind") in ("CallExpr", "CXXMemberCallExpr",
                                     "CXXOperatorCallExpr"):
                    self._call(c, fn, depth, is_stmt=True)
                elif c.get("kind") == "CompoundStmt":
                    self._stmt(c, fn, depth + 1)
                    # Guards declared in the nested scope die with it; the
                    # last line visited inside approximates the brace.
                    for l in fn.locks:
                        if l.release_line == 0 and l.depth > depth:
                            l.release_line = self.cur_line
                else:
                    self._stmt(c, fn, depth)
            return
        line = self._range_line(node)
        if kind == "CXXForRangeStmt":
            self._range_for(node, fn, depth, line)
            return
        if kind == "DeclStmt":
            for c in node.get("inner", []):
                if c.get("kind") == "VarDecl":
                    self._var_decl(c, fn, depth)
            return
        if kind in ("CallExpr", "CXXMemberCallExpr", "CXXOperatorCallExpr"):
            self._call(node, fn, depth, is_stmt=False)
            return
        for c in node.get("inner", []):
            nested = kind in ("IfStmt", "ForStmt", "WhileStmt", "DoStmt",
                              "SwitchStmt", "CXXTryStmt")
            self._stmt(c, fn, depth + 1 if nested else depth)
            if nested:
                for l in fn.locks:
                    if l.release_line == 0 and l.depth > depth:
                        l.release_line = self.cur_line

    def _range_for(self, node: dict, fn: Function, depth: int,
                   line: int) -> None:
        inner = node.get("inner", [])
        # Layout: init?, range-decl, begin, end, cond, inc, loop-var, body.
        seq_text = ""
        for c in inner:
            if c.get("kind") == "DeclStmt":
                for v in c.get("inner", []):
                    if v.get("kind") == "VarDecl" and \
                            v.get("name") == "__range1":
                        for e in v.get("inner", []):
                            seq_text = self._expr_text(e)
                break
        base = ""
        for part in seq_text.replace("->", ".").split("."):
            part = part.strip("()&* ")
            if part:
                base = part.split("[")[0]
                break
        fn.loops.append(RangeLoop(seq_text=seq_text, seq_base=base,
                                  line=line, subscripted="[" in seq_text))
        if inner:
            self._stmt(inner[-1], fn, depth + 1)

    def _var_decl(self, node: dict, fn: Function, depth: int) -> None:
        _, line = self._loc(node)
        name = node.get("name", "")
        type_text = (node.get("type") or {}).get("qualType", "")
        init_call = ""
        for c in node.get("inner", []):
            init_call = init_call or self._first_callee(c)
            self._stmt(c, fn, depth)
        if not name:
            return
        fn.decls.append(Decl(name=name, type_text=type_text, line=line,
                             init_call=init_call))
        base = type_text.split("<")[0].split("::")[-1].strip()
        if base in _LOCK_GUARD_TYPES:
            arg = ""
            for c in node.get("inner", []):
                arg = arg or self._expr_text(c)
            fn.locks.append(LockAcq(mutex_text=arg.lstrip("&* "), line=line,
                                    depth=depth))

    def _call(self, node: dict, fn: Function, depth: int,
              is_stmt: bool) -> None:
        line = self._range_line(node)
        inner = node.get("inner", [])
        callee = inner[0] if inner else {}
        name, recv = self._callee_name(callee)
        args = inner[1:]
        arg_text = [self._expr_text(a) for a in args]
        str_args = [self._str_literal(a) for a in args]
        if name:
            fn.calls.append(Call(name=name, line=line, recv=recv,
                                 args=arg_text, str_args=str_args,
                                 is_stmt=is_stmt, depth=depth))
            if name in ("Lock", "lock") and recv and not args:
                fn.locks.append(LockAcq(mutex_text=recv, line=line,
                                        depth=depth, kind="manual"))
        for a in args:
            self._stmt(a, fn, depth)

    # -- expression helpers -------------------------------------------------

    def _callee_name(self, node: dict) -> tuple[str, str]:
        kind = node.get("kind", "")
        if kind == "MemberExpr":
            name = node.get("name", "")
            inner = node.get("inner", [])
            recv = self._expr_text(inner[0]) if inner else ""
            return name, recv
        if kind == "DeclRefExpr":
            ref = node.get("referencedDecl") or {}
            return ref.get("name", ""), ""
        for c in node.get("inner", []):
            name, recv = self._callee_name(c)
            if name:
                return name, recv
        return "", ""

    def _first_callee(self, node: dict) -> str:
        if node.get("kind", "") in ("CallExpr", "CXXMemberCallExpr"):
            inner = node.get("inner", [])
            if inner:
                return self._callee_name(inner[0])[0]
        for c in node.get("inner", []):
            got = self._first_callee(c)
            if got:
                return got
        return ""

    def _str_literal(self, node: dict) -> str | None:
        if node.get("kind") == "StringLiteral":
            v = node.get("value", "")
            return v.strip('"') if isinstance(v, str) else None
        inner = node.get("inner", [])
        if len(inner) == 1:
            return self._str_literal(inner[0])
        return None

    def _expr_text(self, node: dict) -> str:
        kind = node.get("kind", "")
        if kind == "DeclRefExpr":
            return (node.get("referencedDecl") or {}).get("name", "")
        if kind == "MemberExpr":
            inner = node.get("inner", [])
            base = self._expr_text(inner[0]) if inner else ""
            name = node.get("name", "")
            if base in ("", "this"):
                return name
            return f"{base}.{name}"
        if kind == "StringLiteral":
            v = node.get("value", "")
            return v if isinstance(v, str) else ""
        if kind == "IntegerLiteral":
            return node.get("value", "")
        if kind == "CXXThisExpr":
            return "this"
        parts = [self._expr_text(c) for c in node.get("inner", [])]
        parts = [p for p in parts if p]
        return parts[0] if parts else ""


def facts_from_ast(path: str, abs_src: str, ast: dict) -> TuFacts:
    return _Walker(path, abs_src).walk(ast)


def parse_file(clang: str, abs_src: str, rel: str, entry: dict,
               cache_dir: str, repo_root: str, version: str) -> TuFacts | None:
    """Facts for one TU, via the facts cache when the content hash matches."""
    key = cache_key(abs_src, entry, repo_root, version)
    cache_path = os.path.join(cache_dir, key + ".json")
    if os.path.isfile(cache_path):
        with open(cache_path, encoding="utf-8") as f:
            cached = TuFacts.from_json(f.read())
        if cached is not None:
            return cached
    ast = dump_ast(clang, abs_src, entry)
    if ast is None:
        return None
    tu = facts_from_ast(rel, abs_src, ast)
    os.makedirs(cache_dir, exist_ok=True)
    tmp = cache_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        f.write(tu.to_json())
    os.replace(tmp, cache_path)
    return tu
